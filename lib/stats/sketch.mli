(** Fast-AGMS (count) sketches for join-size estimation, built in one pass
    over join-key columns during execution and consulted by the estimator
    (PAPERS.md, "Online Sketch-based Query Optimization").

    With width [w] and depth [d], the join-size estimate satisfies
    [|est - J| <= sqrt(8/w) * sqrt(F2(a) * F2(b))] with probability at
    least [1 - exp(-d/8)], where F2 is the second frequency moment of
    each input column.  Hashing is deterministic given the seed. *)

type t

val default_width : int
val default_depth : int

(** Fresh empty sketch.  Two sketches are comparable iff created with the
    same [width], [depth] and [seed]. *)
val create : ?width:int -> ?depth:int -> ?seed:int -> unit -> t

(** Same width, depth and seed — required for {!join_estimate}. *)
val compatible : t -> t -> bool

(** Feed one (non-null) key value. *)
val update : t -> int -> unit

(** Number of values fed so far. *)
val items : t -> int

(** Estimated join size of the two sketched columns.
    @raise Invalid_argument on incompatible sketches. *)
val join_estimate : t -> t -> float

(** Estimated second frequency moment (self-join size) of the column. *)
val second_moment : t -> float

(** The (epsilon, delta) guarantee parameters: [epsilon = sqrt(8/width)],
    [delta = exp(-depth/8)]. *)
val epsilon : t -> float

val delta : t -> float

(** [epsilon * sqrt(F2 a * F2 b)] using the sketches' own F2 estimates. *)
val error_bound : t -> t -> float

(** {2 Registry}

    Sketches built during execution, keyed by (table, column), stamped
    with the table row count at build time so stale sketches are ignored
    after data or statistics change. *)

type entry = { sketch : t; rows_at_build : float }
type registry

val registry_create : unit -> registry
val registry_set : registry -> table:string -> column:string -> entry -> unit
val registry_find : registry -> table:string -> column:string -> entry option

(** The entry's sketch iff its build-time row count matches [rows] (the
    table's current row count per the statistics registry). *)
val entry_fresh : entry -> rows:float -> t option

val registry_iter :
  (table:string -> column:string -> entry -> unit) -> registry -> unit

val registry_clear : registry -> unit
val registry_size : registry -> int
