(* Propagation of statistical summaries through operators (Section 5.1.3)
   and predicate selectivity estimation.

   A [rel_stats] is the statistical summary of one data stream: estimated
   cardinality plus per-column statistics keyed by (alias, column).  It is a
   *logical* property: every plan for the same expression shares it (5.2's
   logical-vs-physical distinction), which is why the optimizers attach it
   to memo groups, not to plans. *)

open Relalg

type col_key = string * string (* alias, column *)

type rel_stats = {
  card : float;
  schema : Schema.t; (* used for width/pages of intermediate streams *)
  cols : (col_key * Table_stats.col_stats) list;
}

(* Estimation assumptions, the knobs exercised by experiment E10. *)
type assumption = {
  conjunction : [ `Independence | `Most_selective ];
  use_histograms : bool;
  use_sketches : bool;
      (* prefer Fast-AGMS sketches over histograms for join predicates *)
}

let default_assumption =
  { conjunction = `Independence; use_histograms = true; use_sketches = false }

(* System-R's ad-hoc constants, used when no statistics apply ([55]). *)
let default_eq_sel = 0.1
let default_range_sel = 1. /. 3.
let default_sel = 1. /. 3.

let pages (r : rel_stats) : float =
  float_of_int
    (Storage.Page.pages_for ~rows:(int_of_float (Float.round r.card)) r.schema)

let of_table (ts : Table_stats.t) ~alias ~(schema : Schema.t) : rel_stats =
  { card = ts.Table_stats.rows;
    schema;
    cols =
      List.map (fun (name, cs) -> ((alias, name), cs)) ts.Table_stats.cols }

let find_col (r : rel_stats) (c : Expr.col_ref) : Table_stats.col_stats option
  =
  match List.assoc_opt (c.Expr.rel, c.Expr.col) r.cols with
  | Some cs -> Some cs
  | None ->
    (* unqualified output columns of projections/aggregations *)
    List.assoc_opt ("", c.Expr.col) r.cols

let const_float (e : Expr.t) : float option =
  match e with
  | Expr.Const v -> Value.to_float v
  | _ -> None

let ndv_of (r : rel_stats) c =
  match find_col r c with
  | Some cs -> max 1. cs.Table_stats.n_distinct
  | None -> max 1. r.card

(* Selectivity of a comparison between a column and a constant. *)
let cmp_col_const asm (r : rel_stats) op (c : Expr.col_ref) (v : float) =
  match find_col r c with
  | None -> (match op with Expr.Eq -> default_eq_sel | _ -> default_range_sel)
  | Some cs -> (
    let hist =
      if asm.use_histograms then cs.Table_stats.hist else None
    in
    match op, hist with
    | Expr.Eq, Some h -> Histogram.est_eq h v
    | Expr.Neq, Some h -> 1. -. Histogram.est_eq h v
    | Expr.Lt, Some h | Expr.Le, Some h -> Histogram.est_range h ~hi:v ()
    | Expr.Gt, Some h | Expr.Ge, Some h -> Histogram.est_range h ~lo:v ()
    | Expr.Eq, None -> 1. /. max 1. cs.Table_stats.n_distinct
    | Expr.Neq, None -> 1. -. (1. /. max 1. cs.Table_stats.n_distinct)
    | (Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge), None -> (
      (* interpolate against robust bounds when available *)
      match cs.Table_stats.lo, cs.Table_stats.hi with
      | Some lo, Some hi when hi > lo ->
        let frac = (v -. lo) /. (hi -. lo) in
        let frac = Float.max 0. (Float.min 1. frac) in
        (match op with
         | Expr.Lt | Expr.Le -> frac
         | Expr.Gt | Expr.Ge -> 1. -. frac
         | Expr.Eq | Expr.Neq -> default_range_sel)
      | _ -> default_range_sel))

let clamp01 s = Float.max 0. (Float.min 1. s)

(* Selectivity of an arbitrary predicate against a single stream. *)
let rec selectivity ?(asm = default_assumption) (r : rel_stats) (e : Expr.t) :
  float =
  clamp01 (sel asm r e)

and sel asm r (e : Expr.t) : float =
  match e with
  | Expr.Const (Value.Bool true) -> 1.
  | Expr.Const (Value.Bool false) -> 0.
  | Expr.And (a, b) -> (
    let sa = sel asm r a and sb = sel asm r b in
    match asm.conjunction with
    | `Independence -> sa *. sb
    | `Most_selective -> Float.min sa sb)
  | Expr.Or (a, b) ->
    let sa = sel asm r a and sb = sel asm r b in
    sa +. sb -. (sa *. sb)
  | Expr.Not (Expr.Is_null (Expr.Col c)) -> (
    match find_col r c with
    | Some cs -> 1. -. cs.Table_stats.null_frac
    | None -> 1. -. default_eq_sel)
  | Expr.Not a -> 1. -. sel asm r a
  | Expr.Is_null (Expr.Col c) -> (
    match find_col r c with
    | Some cs -> cs.Table_stats.null_frac
    | None -> default_eq_sel)
  | Expr.Is_null _ -> default_eq_sel
  | Expr.Cmp (op, Expr.Col a, Expr.Col b) when a.Expr.rel <> b.Expr.rel -> (
    (* join predicate: containment assumption *)
    match op with
    | Expr.Eq -> (
      (* Fast-AGMS sketches, when both columns carry fresh compatible
         ones: estimated join size over the product of the sketched
         column counts.  A negative median (sketch noise) clamps to 0;
         [floor_one] downstream keeps nonempty inputs at >= 1 row. *)
      let join_sel_sketch =
        if asm.use_sketches then
          match find_col r a, find_col r b with
          | Some { Table_stats.sketch = Some sa; _ },
            Some { Table_stats.sketch = Some sb; _ }
            when Sketch.compatible sa sb ->
            let na = float_of_int (Sketch.items sa)
            and nb = float_of_int (Sketch.items sb) in
            if na > 0. && nb > 0. then
              Some (Float.max 0. (Sketch.join_estimate sa sb) /. (na *. nb))
            else None
          | _ -> None
        else None
      in
      let join_sel_hist =
        if asm.use_histograms then
          match find_col r a, find_col r b with
          | Some { Table_stats.hist = Some ha; _ },
            Some { Table_stats.hist = Some hb; _ } ->
            let na = Histogram.total ha and nb = Histogram.total hb in
            if na > 0. && nb > 0. then
              Some (Histogram.join_rows ha hb /. (na *. nb))
            else None
          | _ -> None
        else None
      in
      match join_sel_sketch, join_sel_hist with
      | Some s, _ -> s
      | None, Some s -> s
      | None, None -> 1. /. Float.max (ndv_of r a) (ndv_of r b))
    | Expr.Neq -> 1. -. (1. /. Float.max (ndv_of r a) (ndv_of r b))
    | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge -> default_range_sel)
  | Expr.Cmp (op, Expr.Col c, rhs) -> (
    match const_float rhs with
    | Some v -> cmp_col_const asm r op c v
    | None -> (
      match op with Expr.Eq -> default_eq_sel | _ -> default_range_sel))
  | Expr.Cmp (op, lhs, Expr.Col c) -> (
    match const_float lhs with
    | Some v ->
      let flipped =
        match op with
        | Expr.Lt -> Expr.Gt | Expr.Le -> Expr.Ge
        | Expr.Gt -> Expr.Lt | Expr.Ge -> Expr.Le
        | Expr.Eq -> Expr.Eq | Expr.Neq -> Expr.Neq
      in
      cmp_col_const asm r flipped c v
    | None -> (
      match op with Expr.Eq -> default_eq_sel | _ -> default_range_sel))
  | Expr.Udf (u, _) -> u.Expr.udf_selectivity
  | Expr.Cmp _ | Expr.Const _ | Expr.Col _ | Expr.Binop _ -> default_sel

(* ------------------------------------------------------------------ *)
(* Propagation through operators *)

let cap_distinct card cols =
  List.map
    (fun (k, cs) ->
       (k, { cs with Table_stats.n_distinct = Float.min cs.Table_stats.n_distinct (Float.max 1. card) }))
    cols

(* Clamp a derived cardinality to at least one row when the input is
   nonempty; an estimate of exactly zero is reserved for provably empty
   inputs.  Complement selectivities (NOT, <>) and histogram range
   estimates saturate to exactly 0 when the base selectivity saturates
   to 1 or the histogram carries no mass in range — none of which proves
   emptiness (the q-error oracle treats est=0/act>0 as a contradiction). *)
let floor_one input_card est =
  if input_card > 0. then Float.max 1. est else Float.max 0. est

(* A predicate is provably false for estimation purposes only when a
   literal FALSE appears as a conjunct — the form the analysis layer's
   contradiction folding rewrites to. *)
let provably_false e =
  List.exists
    (function Expr.Const (Value.Bool false) -> true | _ -> false)
    (Pred.conjuncts e)

(* Selection: scale cardinality; if the predicate constrains a single column
   through a histogram, restrict that histogram too (the simplest propagation
   case of 5.1.3). *)
let apply_select ?(asm = default_assumption) (r : rel_stats) (e : Expr.t) :
  rel_stats =
  let s = selectivity ~asm r e in
  let card = Float.max 0. (r.card *. s) in
  let card = if provably_false e then card else floor_one r.card card in
  (* restrict histograms for conjuncts of shape col CMP const *)
  let conjuncts = Pred.conjuncts e in
  let restrict ((alias, col), cs) =
    let applies op v =
      match cs.Table_stats.hist with
      | None -> None
      | Some h -> (
        match op with
        | Expr.Eq ->
          let selv = Histogram.est_eq h v in
          let open Histogram in
          Some
            { total = h.total *. selv;
              singletons = [| (v, h.total *. selv) |];
              buckets = [||] }
        | Expr.Lt | Expr.Le ->
          let open Histogram in
          let keep =
            Array.to_list h.buckets
            |> List.filter_map (fun b ->
                if b.lo > v then None
                else if b.hi <= v then Some b
                else
                  Some { b with hi = v;
                                count = Histogram.bucket_range_rows b ~lo_v:b.lo ~hi_v:v })
          in
          Some { buckets = Array.of_list keep;
                        total = List.fold_left (fun a b -> a +. b.count) 0. keep
                                +. Array.fold_left (fun a (w, c) -> if w <= v then a +. c else a) 0. h.singletons;
                        singletons = Array.of_list (List.filter (fun (w, _) -> w <= v) (Array.to_list h.singletons)) }
        | Expr.Gt | Expr.Ge ->
          let open Histogram in
          let keep =
            Array.to_list h.buckets
            |> List.filter_map (fun b ->
                if b.hi < v then None
                else if b.lo >= v then Some b
                else
                  Some { b with lo = v;
                                count = Histogram.bucket_range_rows b ~lo_v:v ~hi_v:b.hi })
          in
          Some { buckets = Array.of_list keep;
                        total = List.fold_left (fun a b -> a +. b.count) 0. keep
                                +. Array.fold_left (fun a (w, c) -> if w >= v then a +. c else a) 0. h.singletons;
                        singletons = Array.of_list (List.filter (fun (w, _) -> w >= v) (Array.to_list h.singletons)) }
        | Expr.Neq -> None)
    in
    let new_hist =
      List.fold_left
        (fun acc conj ->
           match conj with
           | Expr.Cmp (op, Expr.Col c, rhs)
             when c.Expr.rel = alias && c.Expr.col = col ->
             (match const_float rhs with
              | Some v -> (
                match applies op v with Some h -> Some h | None -> acc)
              | None -> acc)
           | _ -> acc)
        cs.Table_stats.hist conjuncts
    in
    ((alias, col), { cs with Table_stats.hist = new_hist })
  in
  let cols = List.map restrict r.cols in
  { r with card; cols = cap_distinct card cols }

let join ?(asm = default_assumption) (kind : Algebra.join_kind)
    (l : rel_stats) (rr : rel_stats) (pred : Expr.t) : rel_stats =
  let combined_cols = l.cols @ rr.cols in
  let combined =
    { card = l.card *. rr.card;
      schema = Schema.concat l.schema rr.schema;
      cols = combined_cols }
  in
  let s = selectivity ~asm combined pred in
  let inner_card = Float.max 0. (l.card *. rr.card *. s) in
  let inner_card =
    (* same convention as Semi/Anti below: a complement selectivity
       saturating to 0 (e.g. <> when both sides are single-valued) does
       not prove the join output empty *)
    if provably_false pred then inner_card
    else floor_one combined.card inner_card
  in
  let card, schema =
    match kind with
    | Algebra.Inner -> (inner_card, combined.schema)
    | Algebra.Left_outer -> (Float.max inner_card l.card, combined.schema)
    | Algebra.Semi ->
      (* floor at one row: saturating to an exact zero would claim the
         output is provably empty, which the independence assumption
         cannot establish (the q-error oracle treats est=0/act>0 as a
         contradiction) *)
      (floor_one l.card (Float.min l.card inner_card), l.schema)
    | Algebra.Anti ->
      (floor_one l.card (l.card -. Float.min l.card inner_card), l.schema)
  in
  let cols =
    match kind with
    | Algebra.Semi | Algebra.Anti -> l.cols
    | Algebra.Inner | Algebra.Left_outer -> combined_cols
  in
  { card; schema; cols = cap_distinct card cols }

let group (r : rel_stats) ~(keys : (Expr.t * string) list)
    ~(aggs : (Expr.agg * string) list) : rel_stats =
  let key_ndv (e, _) =
    match e with
    | Expr.Col c -> ndv_of r c
    | _ -> Float.max 1. (r.card /. 10.)
  in
  let groups =
    if keys = [] then 1.
    else
      Float.min r.card (List.fold_left (fun acc k -> acc *. key_ndv k) 1. keys)
  in
  let schema =
    List.map
      (fun (e, a) ->
         Schema.column ~rel:"" ~name:a ~ty:(Typing.infer r.schema e))
      keys
    @ List.map
        (fun (g, a) ->
           Schema.column ~rel:"" ~name:a ~ty:(Typing.infer_agg r.schema g))
        aggs
  in
  let cols =
    List.filter_map
      (fun (e, a) ->
         match e with
         | Expr.Col c -> (
           match find_col r c with
           | Some cs -> Some (("", a), { cs with Table_stats.hist = cs.Table_stats.hist })
           | None -> None)
         | _ -> None)
      keys
  in
  (* Keyed grouping of a provably empty input yields no groups; an exact
     zero is reserved for that case.  A scalar aggregate (no keys) always
     emits exactly one row, even over empty input. *)
  let card =
    if keys <> [] && r.card <= 0. then 0. else Float.max 1. groups
  in
  { card; schema; cols = cap_distinct groups cols }

let project (r : rel_stats) (items : (Expr.t * string) list) : rel_stats =
  let schema =
    List.map
      (fun (e, a) ->
         Schema.column ~rel:"" ~name:a ~ty:(Typing.infer r.schema e))
      items
  in
  let cols =
    List.filter_map
      (fun (e, a) ->
         match e with
         | Expr.Col c ->
           Option.map (fun cs -> (("", a), cs)) (find_col r c)
         | _ -> None)
      items
  in
  { r with schema; cols }

let distinct (r : rel_stats) : rel_stats =
  let ndv_all =
    List.fold_left
      (fun acc (_, cs) -> acc *. Float.max 1. cs.Table_stats.n_distinct)
      1.
      (List.filteri (fun i _ -> i < 4) r.cols)
  in
  let card = Float.min r.card (Float.max 1. ndv_all) in
  { r with card; cols = cap_distinct card r.cols }

(* Full bottom-up derivation over a logical tree. *)
let rec of_algebra ?(asm = default_assumption) (db : Table_stats.db)
    (t : Algebra.t) : rel_stats =
  match t with
  | Algebra.Scan { table; alias; schema } -> (
    match Table_stats.find db table with
    | Some ts -> of_table ts ~alias ~schema
    | None -> { card = 1000.; schema; cols = [] })
  | Algebra.Select (p, i) -> apply_select ~asm (of_algebra ~asm db i) p
  | Algebra.Project (items, i) -> project (of_algebra ~asm db i) items
  | Algebra.Join (k, p, l, r) ->
    join ~asm k (of_algebra ~asm db l) (of_algebra ~asm db r) p
  | Algebra.Group_by { keys; aggs; input } ->
    group (of_algebra ~asm db input) ~keys ~aggs
  | Algebra.Distinct i -> distinct (of_algebra ~asm db i)
  | Algebra.Order_by (_, i) -> of_algebra ~asm db i
