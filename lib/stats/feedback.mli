(** Cardinality feedback cache: actual cardinalities observed during
    execution, keyed by a normalized digest of the logical subexpression
    and consulted on re-optimization in place of derived estimates.

    Keys are position-independent for the SPJ core — a subexpression is
    its set of (alias, table) pairs plus the canonicalized set of
    conjuncts applied anywhere within it — so every join order and every
    selection placement for the same logical subexpression shares one
    cache line.  Entries are fingerprinted with the row counts of the
    involved base tables and silently invalidated when statistics are
    refreshed to different counts. *)

open Relalg

type key = string
(** 8-hex FNV-1a digest. *)

(** FNV-1a digest of an arbitrary string (same scheme as [Obs.Trace]). *)
val digest : string -> string

(** Canonical form of one conjunct; equality operands are sorted so
    [a.x = b.y] and the reconstructed [b.y = a.x] agree. *)
val canon_pred : Expr.t -> string

(** [key ~shape ~rels ~preds] builds the cache key.  [rels] and [preds]
    are sorted and deduplicated internally.  [shape] distinguishes
    non-SPJ cardinalities ("spj", "semi:...", "group:...", ...). *)
val key : shape:string -> rels:(string * string) list -> preds:string list -> key

type t

val create : unit -> t
val clear : t -> unit
val size : t -> int

val hits : t -> int
val misses : t -> int
val records : t -> int

(** Record an observed cardinality, fingerprinting the current row counts
    of [tables] from [db]. *)
val record : t -> db:Table_stats.db -> tables:string list -> key -> float -> unit

(** Observed cardinality for the key, or [None] (stale entries are
    dropped and count as misses). *)
val lookup : t -> db:Table_stats.db -> key -> float option

(** Drop every entry touching any of the tables. *)
val invalidate_tables : t -> string list -> unit
