(* Cardinality feedback cache: observed actual cardinalities of executed
   (sub)plans, keyed by a normalized digest of the logical subexpression,
   consulted on re-optimization in place of derived estimates (the
   "closing the loop" direction Chaudhuri's Section 5 motivates; see also
   PAPERS.md, "Analyzing Query Optimizer Performance in the Presence and
   Absence of Cardinality Estimates").

   Keys are position-independent for the SPJ core: a subexpression is
   identified by its set of (alias, table) pairs plus the canonicalized
   set of conjuncts applied anywhere within it, regardless of join order
   or of where selections sit in the plan.  Every plan the optimizer
   considers for the same logical subexpression therefore shares one
   cache line, exactly as [Stats.Derive.rel_stats] is a logical property.
   Non-SPJ shapes (semi/anti/outer joins, grouping, distinct) carry an
   explicit shape marker since their cardinalities differ.

   Each entry records the row count of every base table involved at the
   time the actual was observed; a lookup whose fingerprint no longer
   matches the statistics registry is treated as a miss and dropped
   (invalidation on catalog/statistics refresh or append). *)

open Relalg

type key = string (* 8-hex FNV-1a digest *)

(* FNV-1a over the canonical description — same scheme as the block
   digests in [Obs.Trace] (obs sits above stats, so reimplemented). *)
let digest (s : string) : string =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xffffffff)
    s;
  Printf.sprintf "%08x" !h

(* Canonical form of one conjunct.  Equality operands are sorted so the
   logical [a.x = b.y] and a join operator's reconstructed [b.y = a.x]
   agree; other predicates print as written. *)
let canon_pred (e : Expr.t) : string =
  match e with
  | Expr.Cmp (Expr.Eq, a, b) ->
    let sa = Expr.to_string a and sb = Expr.to_string b in
    if sa <= sb then sa ^ " = " ^ sb else sb ^ " = " ^ sa
  | e -> Expr.to_string e

(* [key ~shape ~rels ~preds]: [rels] are the (alias, table) pairs of the
   subexpression, [preds] its canonicalized conjuncts (from {!canon_pred}).
   Both are sorted and deduplicated here, so callers need not normalize. *)
let key ~(shape : string) ~(rels : (string * string) list)
    ~(preds : string list) : key =
  let rels = List.sort_uniq compare rels in
  let preds = List.sort_uniq compare preds in
  let buf = Buffer.create 128 in
  Buffer.add_string buf shape;
  List.iter
    (fun (a, t) ->
       Buffer.add_char buf '\x01';
       Buffer.add_string buf a;
       Buffer.add_char buf '=';
       Buffer.add_string buf t)
    rels;
  List.iter
    (fun p ->
       Buffer.add_char buf '\x02';
       Buffer.add_string buf p)
    preds;
  digest (Buffer.contents buf)

type entry = {
  act : float; (* observed output cardinality *)
  fingerprints : (string * float) list; (* table -> rows at record time *)
}

type t = {
  cache : (key, entry) Hashtbl.t;
  mutable hits : int; (* lookups answered from the cache *)
  mutable misses : int; (* lookups with no (fresh) entry *)
  mutable records : int; (* actuals recorded *)
}

let create () : t =
  { cache = Hashtbl.create 64; hits = 0; misses = 0; records = 0 }

let clear (fb : t) : unit = Hashtbl.reset fb.cache
let size (fb : t) : int = Hashtbl.length fb.cache
let hits (fb : t) = fb.hits
let misses (fb : t) = fb.misses
let records (fb : t) = fb.records

let fingerprint_of (db : Table_stats.db) (table : string) : string * float =
  match Table_stats.find db table with
  | Some ts -> (table, ts.Table_stats.rows)
  | None -> (table, -1.) (* unknown table: distinct from any analyzed state *)

(* Record the observed cardinality for [k].  [tables] are the base tables
   of the subexpression; their current row counts (per [db]) become the
   entry's freshness fingerprint. *)
let record (fb : t) ~(db : Table_stats.db) ~(tables : string list) (k : key)
    (act : float) : unit =
  fb.records <- fb.records + 1;
  let fingerprints =
    List.map (fingerprint_of db) (List.sort_uniq compare tables)
  in
  Hashtbl.replace fb.cache k { act; fingerprints }

let fresh ~(db : Table_stats.db) (e : entry) : bool =
  List.for_all
    (fun (table, rows) -> snd (fingerprint_of db table) = rows)
    e.fingerprints

(* Look up the observed cardinality for [k].  A stale entry (any involved
   table re-analyzed to a different row count, or dropped) is removed and
   reported as a miss. *)
let lookup (fb : t) ~(db : Table_stats.db) (k : key) : float option =
  match Hashtbl.find_opt fb.cache k with
  | Some e when fresh ~db e ->
    fb.hits <- fb.hits + 1;
    Some e.act
  | Some _ ->
    Hashtbl.remove fb.cache k;
    fb.misses <- fb.misses + 1;
    None
  | None ->
    fb.misses <- fb.misses + 1;
    None

(* Drop every entry touching any of [tables] — explicit invalidation for
   callers that mutate data without re-analyzing. *)
let invalidate_tables (fb : t) (tables : string list) : unit =
  let doomed =
    Hashtbl.fold
      (fun k e acc ->
         if List.exists (fun (t, _) -> List.mem t tables) e.fingerprints
         then k :: acc
         else acc)
      fb.cache []
  in
  List.iter (Hashtbl.remove fb.cache) doomed
