(* Statistical summaries of base data (Section 5.1.1): per-table row and
   page counts, per-column distinct counts, null fraction, second-lowest /
   second-highest values (the paper's outlier-robust min/max), and an
   optional histogram on numeric columns. *)

open Relalg

type col_stats = {
  n_distinct : float;
  null_frac : float;
  lo : float option; (* second-lowest value, numeric columns *)
  hi : float option; (* second-highest *)
  min_v : float option; (* exact minimum (numeric columns) — sound bound *)
  max_v : float option; (* exact maximum — sound bound *)
  hist : Histogram.t option;
  sketch : Sketch.t option; (* Fast-AGMS sketch, folded in after execution *)
}

type t = {
  table : string;
  rows : float;
  pages : int;
  cols : (string * col_stats) list; (* by column name *)
}

(* The statistics registry: the [stats]-side companion of the catalog. *)
type db = (string, t) Hashtbl.t

let create_db () : db = Hashtbl.create 16

let numeric_values (table : Storage.Table.t) ci : float array =
  let out = Storage.Vec.create () in
  Storage.Table.iter
    (fun tu ->
       match Value.to_float (Tuple.get tu ci) with
       | Some f -> Storage.Vec.push out f
       | None -> ())
    table;
  Storage.Vec.to_array out

let robust_bounds (sorted : float array) =
  let n = Array.length sorted in
  if n = 0 then (None, None)
  else if n <= 2 then (Some sorted.(0), Some sorted.(n - 1))
  else (Some sorted.(1), Some sorted.(n - 2))
    (* 2nd-lowest / 2nd-highest: min and max are likely outliers (5.1.1) *)

let analyze_column ?(hist_buckets = 20) ?(hist_kind = Sample.Equi_depth)
    (table : Storage.Table.t) cname : col_stats =
  let ci = Storage.Table.column_index table cname in
  let n = Storage.Table.row_count table in
  let nulls = ref 0 in
  let distinct = Hashtbl.create 256 in
  Storage.Table.iter
    (fun tu ->
       let v = Tuple.get tu ci in
       if Value.is_null v then incr nulls else Hashtbl.replace distinct v ())
    table;
  let col = List.nth table.Storage.Table.schema ci in
  let is_numeric =
    match col.Schema.ty with
    | Value.Tint | Value.Tfloat -> true
    | Value.Tbool | Value.Tstring -> false
  in
  let values = if is_numeric then numeric_values table ci else [||] in
  let sorted = Array.copy values in
  Array.sort Float.compare sorted;
  let lo, hi = robust_bounds sorted in
  let min_v, max_v =
    let n = Array.length sorted in
    if n = 0 then (None, None) else (Some sorted.(0), Some sorted.(n - 1))
  in
  let hist =
    if is_numeric && Array.length values > 0 then
      Some (Sample.build hist_kind ~buckets:hist_buckets values)
    else None
  in
  { n_distinct = float_of_int (Hashtbl.length distinct);
    null_frac = (if n = 0 then 0. else float_of_int !nulls /. float_of_int n);
    lo;
    hi;
    min_v;
    max_v;
    hist;
    sketch = None }

let analyze ?hist_buckets ?hist_kind (table : Storage.Table.t) : t =
  { table = table.Storage.Table.name;
    rows = float_of_int (Storage.Table.row_count table);
    pages = Storage.Table.page_count table;
    cols =
      List.map
        (fun (c : Schema.column) ->
           (c.Schema.name,
            analyze_column ?hist_buckets ?hist_kind table c.Schema.name))
        table.Storage.Table.schema }

(* ANALYZE every table of the catalog into a fresh registry. *)
let analyze_catalog ?hist_buckets ?hist_kind (cat : Storage.Catalog.t) : db =
  let db = create_db () in
  List.iter
    (fun name ->
       Hashtbl.replace db name
         (analyze ?hist_buckets ?hist_kind (Storage.Catalog.table cat name)))
    (Storage.Catalog.table_names cat);
  db

let find (db : db) table : t option = Hashtbl.find_opt db table

let col (t : t) name : col_stats option = List.assoc_opt name t.cols

let pp_col ppf (name, c) =
  Fmt.pf ppf "%s: ndv=%.0f nulls=%.2f lo=%a hi=%a%s" name c.n_distinct
    c.null_frac
    Fmt.(option ~none:(any "-") float) c.lo
    Fmt.(option ~none:(any "-") float) c.hi
    (match c.hist with None -> "" | Some h ->
       Printf.sprintf " hist(%d)" (Histogram.bucket_count h))

let pp ppf t =
  Fmt.pf ppf "@[<v>%s: %.0f rows, %d pages@,%a@]" t.table t.rows t.pages
    Fmt.(list ~sep:cut pp_col) t.cols
