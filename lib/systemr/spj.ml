(* Normalized Select-Project-Join queries — the query class the System-R
   framework optimizes (Section 3).  A SPJ query is a set of relations to be
   joined, a conjunctive predicate, an optional projection and an optional
   required output order. *)

open Relalg

type relation = { alias : string; table : string; schema : Schema.t }

type t = {
  relations : relation list;
  predicates : Expr.t list; (* conjuncts: filters and join predicates *)
  projections : (Expr.t * string) list option; (* None = SELECT * *)
  order_by : Cost.Physical_props.order;
}

let make ?(projections = None) ?(order_by = []) ~relations ~predicates () =
  { relations; predicates; projections; order_by }

let relation_aliases q = List.map (fun r -> r.alias) q.relations

(* Local (single-relation) conjuncts for [alias].  Constant conjuncts
   (referencing no relation — e.g. the WHERE FALSE left by folding a
   contradictory predicate set) must not be dropped: they are assigned
   to the first relation, which filters the whole result exactly once
   and as early as possible. *)
let local_predicates q alias =
  let first =
    match q.relations with r :: _ -> r.alias = alias | [] -> false
  in
  List.filter
    (fun p ->
       match Pred.classify p with
       | Pred.Single r -> r = alias
       | Pred.Constant -> first
       | Pred.Equi_join _ | Pred.Theta_join _ -> false)
    q.predicates

(* Conjuncts spanning at least two relations. *)
let join_predicates q =
  List.filter
    (fun p ->
       match Pred.classify p with
       | Pred.Equi_join _ | Pred.Theta_join _ -> true
       | Pred.Constant | Pred.Single _ -> false)
    q.predicates

let graph q : Query_graph.t =
  Query_graph.of_query
    ~scans:(List.map (fun r -> (r.alias, r.table)) q.relations)
    (join_predicates q)

(* Recognize an SPJ prefix: Project? (Order_by?) (Select | Join | Scan)*.
   Returns [None] on group-by/distinct/outerjoin shapes — those must be
   handled by the rewrite layer first. *)
let of_algebra (a : Algebra.t) : t option =
  let exception Not_spj in
  let relations = ref [] in
  let predicates = ref [] in
  let rec walk (a : Algebra.t) =
    match a with
    | Algebra.Scan { table; alias; schema } ->
      relations := { alias; table; schema } :: !relations
    | Algebra.Select (p, i) ->
      predicates := Pred.conjuncts p @ !predicates;
      walk i
    | Algebra.Join (Algebra.Inner, p, l, r) ->
      predicates := Pred.conjuncts p @ !predicates;
      walk l;
      walk r
    | Algebra.Join ((Algebra.Left_outer | Algebra.Semi | Algebra.Anti), _, _, _)
    | Algebra.Project _ | Algebra.Group_by _ | Algebra.Distinct _
    | Algebra.Order_by _ ->
      raise Not_spj
  in
  let top (a : Algebra.t) =
    let proj, rest =
      match a with
      | Algebra.Project (items, i) -> (Some items, i)
      | _ -> (None, a)
    in
    let order, rest =
      match rest with
      | Algebra.Order_by (keys, i) ->
        let order =
          List.map
            (fun (e, d) ->
               match e with
               | Expr.Col c -> (c, d)
               | _ -> raise Not_spj)
            keys
        in
        (order, i)
      | _ -> ([], rest)
    in
    walk rest;
    make ~projections:proj ~order_by:order
      ~relations:(List.rev !relations)
      ~predicates:(List.rev !predicates) ()
  in
  match top a with q -> Some q | exception Not_spj -> None

(* The reverse direction: a canonical logical tree (left-deep in list
   order), used for stats derivation and for feeding the Cascades
   optimizer. *)
let to_algebra (q : t) : Algebra.t =
  match q.relations with
  | [] -> invalid_arg "Spj.to_algebra: no relations"
  | first :: rest ->
    let scan (r : relation) =
      Algebra.Scan { table = r.table; alias = r.alias; schema = r.schema }
    in
    let joined =
      List.fold_left
        (fun acc r ->
           Algebra.Join (Algebra.Inner, Expr.ftrue, acc, scan r))
        (scan first) rest
    in
    let selected =
      match q.predicates with
      | [] -> joined
      | ps -> Algebra.Select (Pred.of_conjuncts ps, joined)
    in
    let projected =
      match q.projections with
      | None -> selected
      | Some items -> Algebra.Project (items, selected)
    in
    match q.order_by with
    | [] -> projected
    | order ->
      Algebra.Order_by
        (List.map (fun (c, d) -> (Expr.Col c, d)) order, projected)
