(* The naive exhaustive enumerator: optimize every permutation of the
   relations as a left-deep sequence, with no sharing of subplans between
   permutations.  Considers O(n!) sequences where dynamic programming
   considers O(n·2^(n-1)) subsets (Section 3) — experiment E1 measures both.

   Because it explores exactly the same plan shapes as the left-deep DP, its
   best cost must equal the DP's best cost; that equality is a property
   test. *)

let rec factorial n = if n <= 1 then 1 else n * factorial (n - 1)

(* Number of left-deep join *sequences* considered by each strategy. *)
let linear_sequences n = factorial n

let dp_extensions n =
  (* subsets of size k each extended by (n-k) relations *)
  let rec binom n k =
    if k = 0 || k = n then 1 else binom (n - 1) (k - 1) + binom (n - 1) k
  in
  let total = ref 0 in
  for k = 1 to n - 1 do
    total := !total + (binom n k * (n - k))
  done;
  !total

let permutations (xs : 'a list) : 'a list list =
  let rec insert_everywhere x = function
    | [] -> [ [ x ] ]
    | y :: ys ->
      (x :: y :: ys) :: List.map (fun zs -> y :: zs) (insert_everywhere x ys)
  in
  List.fold_left
    (fun acc x -> List.concat_map (insert_everywhere x) acc)
    [ [] ] xs

type result = {
  best : Candidate.t;
  plans_costed : int;
  sequences : int;
}

let optimize ?(config = Join_order.default_config) cat db (q : Spj.t) : result
  =
  let best, plans_costed, sequences =
    let open Join_order in
  let ctx = make_ctx config cat db q in
  let n = Array.length ctx.rels in
  if n > 10 then invalid_arg "Naive.optimize: too many relations (n > 10)";
  let idxs = List.init n Fun.id in
  let perms = permutations idxs in
  let best = ref None in
  let seqs = ref 0 in
  List.iter
    (fun perm ->
       match perm with
       | [] -> ()
       | first :: rest ->
         incr seqs;
         (* skip permutations introducing avoidable Cartesian products *)
         let introduces_cross =
           (not config.allow_cross)
           && (let rec check mask = function
                 | [] -> false
                 | r :: more ->
                   if
                     (not (Join_order.connected_masks ctx mask (1 lsl r)))
                     && List.exists
                          (fun i ->
                             mask land (1 lsl i) = 0
                             && Join_order.connected_masks ctx mask (1 lsl i))
                          idxs
                   then true
                   else check (mask lor (1 lsl r)) more
               in
               check (1 lsl first) rest)
         in
         if not introduces_cross then begin
           let cands0, stats0 = ctx.base.(first) in
           let entry0 = { stats = stats0; cands = cands0 } in
           let _, final =
             List.fold_left
               (fun (mask, left) r ->
                  let rmask = 1 lsl r in
                  let union = mask lor rmask in
                  let rcands, rstats = ctx.base.(r) in
                  let right = { stats = rstats; cands = rcands } in
                  let out_stats = Join_order.stats_of ctx union in
                  let out = { stats = out_stats; cands = [] } in
                  let cands =
                    Join_order.join_cands ctx ~left ~left_mask:mask ~right
                      ~right_mask:rmask ~right_base:(Some r) ~out_stats
                  in
                  Join_order.insert_all ctx out cands;
                  (union, out))
               (1 lsl first, entry0)
               rest
           in
           let res = Join_order.finish ctx q final in
           match !best with
           | None -> best := Some res.Join_order.best
           | Some b ->
             if res.Join_order.best.Candidate.cost < b.Candidate.cost then
               best := Some res.Join_order.best
         end)
    perms;
    match !best with
    | None -> invalid_arg "Naive.optimize: no plan (all permutations pruned)"
    | Some b -> (b, ctx.Join_order.plans_costed, !seqs)
  in
  { best; plans_costed; sequences }
