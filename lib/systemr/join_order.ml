(* Bottom-up dynamic-programming join enumeration (Section 3), with:
   - left-deep (linear) or bushy trees (Section 4.1.1, Figure 2);
   - Cartesian products deferred unless [allow_cross] (System-R's rule) —
     with a rescue path so disconnected query graphs still optimize;
   - interesting orders: per-subset candidate sets pruned to the Pareto
     frontier over (cost, delivered order);
   - pluggable join methods (nested loop, index nested loop, sort-merge,
     hash).

   The enumeration itself is graph-aware.  A bitset query graph is built
   once per query (per-predicate relation masks, per-relation neighbor
   masks), so connectivity checks are a couple of [land]s instead of alias
   lists and predicate scans.  In bushy mode, connected subsets are paired
   with connected complements (csg–cmp generation) instead of enumerating
   all ~3^n splits; chains and stars then cost only a polynomial number of
   pairs.  A greedy left-deep plan seeds a branch-and-bound upper bound:
   plan costs only grow as subplans compose, so a partial candidate dearer
   than a complete plan can be discarded — except that candidates carrying
   an interesting order are kept, exactly as Section 3.1 requires.

   [exhaustive] turns both refinements off: it is the pre-change
   enumerator, preserved as the equivalence oracle and benchmark baseline,
   and doubles as the cartesian rescue path for disconnected graphs. *)

open Relalg

type meth = Nl | Inl | Smj | Hj

type config = {
  params : Cost.Cost_model.params;
  asm : Stats.Derive.assumption;
  allow_cross : bool;
  interesting_orders : bool;
  bushy : bool;
  methods : meth list;
  graph_dp : bool;
  prune : bool;
  feedback : Stats.Feedback.t option;
      (* observed-cardinality cache consulted in [stats_of]; None = off *)
}

let default_config =
  { params = Cost.Cost_model.default_params;
    asm = Stats.Derive.default_assumption;
    allow_cross = false;
    interesting_orders = true;
    bushy = false;
    methods = [ Nl; Inl; Smj; Hj ];
    graph_dp = true;
    prune = true;
    feedback = None }

(* The 1979 System-R repertoire: nested loop and sort-merge only, linear
   trees, no Cartesian products. *)
let system_r_1979 =
  { default_config with methods = [ Nl; Inl; Smj ] }

(* The pre-change search: every mask, every split, alias-list connectivity,
   no cost bound.  Same plan costs as the graph-aware search (a property
   test and the bench pre-check), just slower to find them. *)
let exhaustive c = { c with graph_dp = false; prune = false }

type counters = {
  subsets : int; (* DP table entries created *)
  splits : int; (* (left, right) combinations considered *)
  costed : int; (* physical join candidates built and costed *)
  pruned : int; (* combinations / candidates dropped by the cost bound *)
}

let counters_zero = { subsets = 0; splits = 0; costed = 0; pruned = 0 }

let counters_add a b =
  { subsets = a.subsets + b.subsets;
    splits = a.splits + b.splits;
    costed = a.costed + b.costed;
    pruned = a.pruned + b.pruned }

let counters_sub a b =
  { subsets = a.subsets - b.subsets;
    splits = a.splits - b.splits;
    costed = a.costed - b.costed;
    pruned = a.pruned - b.pruned }

type ctx = {
  cfg : config;
  cat : Storage.Catalog.t;
  db : Stats.Table_stats.db;
  rels : Spj.relation array;
  locals : Expr.t list array;
  join_preds : Expr.t list;
  pred_masks : (Expr.t * int) array;
      (* every join conjunct with the mask of relations it mentions *)
  neighbors : int array;
      (* per-relation adjacency mask over two-relation conjuncts *)
  hyper : int array;
      (* masks of conjuncts spanning >= 3 relations; these connect a
         partition only when fully contained in its union *)
  has_index : bool array;
  base : (Candidate.t list * Stats.Derive.rel_stats) array;
  stats_memo : (int, Stats.Derive.rel_stats) Hashtbl.t;
  trace : (Obs.Trace.event -> unit) option;
      (* optimizer-trace sink; None = tracing off (no event is built) *)
  mutable plans_costed : int;
  mutable splits_considered : int;
  mutable plans_pruned : int;
  mutable subsets_created : int;
  mutable memo_hits : int; (* stats_memo lookups served from the memo *)
}

type entry = { stats : Stats.Derive.rel_stats; mutable cands : Candidate.t list }

type result = {
  best : Candidate.t;
  card : float;
  counters : counters;
}

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

let lowest_bit_index mask =
  if mask = 0 then invalid_arg "lowest_bit_index: empty mask";
  let rec go i m = if m land 1 = 1 then i else go (i + 1) (m lsr 1) in
  go 0 mask

let highest_bit_index mask =
  if mask = 0 then invalid_arg "highest_bit_index: empty mask";
  let rec go i m = if m = 1 then i else go (i + 1) (m lsr 1) in
  go 0 mask

let fold_bits f acc mask =
  let acc = ref acc and m = ref mask and i = ref 0 in
  while !m <> 0 do
    if !m land 1 = 1 then acc := f !acc !i;
    m := !m lsr 1;
    incr i
  done;
  !acc

(* Aliases referenced by a predicate but absent from this query block
   (correlated references) map to a bit above any relation's, so the
   containment test below can never pass — matching the alias-list
   behavior this replaces. *)
let foreign_bit = 1 lsl 60

let make_ctx ?trace cfg cat db (q : Spj.t) : ctx =
  let rels = Array.of_list q.Spj.relations in
  let n = Array.length rels in
  if n > 60 then
    invalid_arg "Join_order: more than 60 relations in one block";
  let locals =
    Array.map (fun (r : Spj.relation) -> Spj.local_predicates q r.Spj.alias) rels
  in
  let base =
    Array.mapi
      (fun i r -> Access_path.candidates cfg.params cfg.asm cat db r locals.(i))
      rels
  in
  let bit_of = Hashtbl.create (max 8 n) in
  Array.iteri (fun i (r : Spj.relation) -> Hashtbl.replace bit_of r.Spj.alias i) rels;
  let join_preds = Spj.join_predicates q in
  let mask_of_pred p =
    List.fold_left
      (fun acc a ->
         match Hashtbl.find_opt bit_of a with
         | Some i -> acc lor (1 lsl i)
         | None -> acc lor foreign_bit)
      0 (Expr.relations p)
  in
  let pred_masks =
    Array.of_list (List.map (fun p -> (p, mask_of_pred p)) join_preds)
  in
  let neighbors = Array.make (max 1 n) 0 in
  let hyper = ref [] in
  Array.iter
    (fun (_, m) ->
       if m land foreign_bit = 0 then
         match popcount m with
         | 0 | 1 -> ()
         | 2 ->
           for i = 0 to n - 1 do
             if m land (1 lsl i) <> 0 then
               neighbors.(i) <- neighbors.(i) lor (m land lnot (1 lsl i))
           done
         | _ -> hyper := m :: !hyper)
    pred_masks;
  let has_index =
    Array.map
      (fun (r : Spj.relation) -> Storage.Catalog.indexes cat r.Spj.table <> [])
      rels
  in
  { cfg;
    cat;
    db;
    rels;
    locals;
    join_preds;
    pred_masks;
    neighbors;
    hyper = Array.of_list (List.rev !hyper);
    has_index;
    base;
    stats_memo = Hashtbl.create 64;
    trace;
    plans_costed = 0;
    splits_considered = 0;
    plans_pruned = 0;
    subsets_created = 0;
    memo_hits = 0 }

let emit ctx e =
  match ctx.trace with None -> () | Some sink -> sink (e ())

let aliases_of ctx mask =
  List.rev (fold_bits (fun acc i -> ctx.rels.(i).Spj.alias :: acc) [] mask)

(* Join conjuncts crossing the (left, right) partition and fully contained
   in their union — two [land]s per conjunct against precomputed masks. *)
let crossing_preds ctx ~left ~right =
  let union = left lor right in
  List.rev
    (Array.fold_left
       (fun acc (p, m) ->
          if m land left <> 0 && m land right <> 0 && m land lnot union = 0
          then p :: acc
          else acc)
       [] ctx.pred_masks)

(* Union of the neighbor masks of [mask]'s relations, minus [mask]. *)
let neighbor_mask ctx mask =
  fold_bits (fun acc i -> acc lor ctx.neighbors.(i)) 0 mask land lnot mask

(* Does any conjunct cross (m1, m2) while staying contained in the union?
   Binary conjuncts reduce to one adjacency [land]; hyperedges still need
   the containment check. *)
let connected_masks ctx m1 m2 =
  neighbor_mask ctx m1 land m2 <> 0
  || (ctx.hyper <> [||]
      &&
      let union = m1 lor m2 in
      Array.exists
        (fun hm ->
           hm land m1 <> 0 && hm land m2 <> 0 && hm land lnot union = 0)
        ctx.hyper)

(* Is [mask] connected under the conjuncts contained in it?  A necessary
   condition for the subset to have any join candidate at all (an
   unconnected subset can only be formed by a cross product, which the
   non-[allow_cross] search never builds). *)
let mask_connected ctx mask =
  mask <> 0
  &&
  let seen = ref (mask land -mask) in
  let frontier = ref !seen in
  while !frontier <> 0 do
    let hyper_nb =
      Array.fold_left
        (fun acc hm ->
           if hm land !seen <> 0 && hm land lnot mask = 0 then acc lor hm
           else acc)
        0 ctx.hyper
    in
    let nb =
      (neighbor_mask ctx !seen lor hyper_nb) land mask land lnot !seen
    in
    seen := !seen lor nb;
    frontier := nb
  done;
  !seen = mask

(* Is the whole query graph connected, in the sense the enumeration cares
   about: can the full set be grown one relation at a time without a cross
   product?  (Stricter than [mask_connected] for hyperedges: a conjunct
   over {A,B,C} cannot join {A} to {B}, so a graph held together only by
   it still needs the cartesian rescue.) *)
let graph_connected ctx =
  let n = Array.length ctx.rels in
  n <= 1
  ||
  let full = (1 lsl n) - 1 in
  let seen = ref 1 and changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      if !seen land (1 lsl i) = 0 && connected_masks ctx !seen (1 lsl i)
      then begin
        seen := !seen lor (1 lsl i);
        changed := true
      end
    done
  done;
  !seen = full

(* The pre-change connectivity test — alias lists rebuilt and every
   conjunct scanned per check — kept verbatim as the measured baseline for
   [graph_dp = false]. *)
let legacy_connected ctx m1 m2 =
  let left_aliases = aliases_of ctx m1
  and right_aliases = aliases_of ctx m2 in
  List.exists
    (fun p ->
       let rels = Expr.relations p in
       List.exists (fun r -> List.mem r left_aliases) rels
       && List.exists (fun r -> List.mem r right_aliases) rels
       && List.for_all
            (fun r -> List.mem r left_aliases || List.mem r right_aliases)
            rels)
    ctx.join_preds

(* Materialized views are planned under generated [__matN_alias] temp
   tables whose names are unstable across runs — their subexpressions
   must not enter (or consult) the feedback cache. *)
let is_temp_table t = String.length t >= 5 && String.sub t 0 5 = "__mat"

(* Feedback-cache key of a subset: its (alias, table) pairs plus every
   conjunct applied anywhere within it — the local filters of each member
   relation and the join conjuncts fully contained in the mask.  This is
   exactly the information [stats_of] folds into the subset's summary, so
   the key identifies the logical subexpression independently of join
   order and selection placement. *)
let feedback_key ctx mask : Stats.Feedback.key option =
  let rels =
    List.rev
      (fold_bits
         (fun acc i ->
            (ctx.rels.(i).Spj.alias, ctx.rels.(i).Spj.table) :: acc)
         [] mask)
  in
  if List.exists (fun (_, t) -> is_temp_table t) rels then None
  else begin
    let local_preds =
      fold_bits
        (fun acc i ->
           List.rev_append (List.map Stats.Feedback.canon_pred ctx.locals.(i)) acc)
        [] mask
    in
    let join_preds =
      Array.fold_left
        (fun acc (p, m) ->
           if m land foreign_bit = 0 && m land mask = m && popcount m >= 2
           then Stats.Feedback.canon_pred p :: acc
           else acc)
        [] ctx.pred_masks
    in
    Some (Stats.Feedback.key ~shape:"spj" ~rels ~preds:(local_preds @ join_preds))
  end

(* Canonical subset statistics: peel the highest relation and join it to the
   rest — the result is independent of which plan produced the subset
   (statistics are a logical property, Section 5).  When a feedback cache
   is configured and holds a fresh actual for the subset's logical
   subexpression, the observed cardinality replaces the derived one. *)
let rec stats_of ctx mask : Stats.Derive.rel_stats =
  match Hashtbl.find_opt ctx.stats_memo mask with
  | Some s ->
    ctx.memo_hits <- ctx.memo_hits + 1;
    s
  | None ->
    let s =
      if mask = 0 then invalid_arg "stats_of: empty subset"
      else if mask land (mask - 1) = 0 then
        snd ctx.base.(lowest_bit_index mask)
      else begin
        let top = highest_bit_index mask in
        let rest = mask land lnot (1 lsl top) in
        let ls = stats_of ctx rest in
        let rs = snd ctx.base.(top) in
        let preds = crossing_preds ctx ~left:rest ~right:(1 lsl top) in
        Stats.Derive.join ~asm:ctx.cfg.asm Algebra.Inner ls rs
          (Pred.of_conjuncts preds)
      end
    in
    let s =
      match ctx.cfg.feedback with
      | None -> s
      | Some fb -> (
        match feedback_key ctx mask with
        | None -> s
        | Some k -> (
          match Stats.Feedback.lookup fb ~db:ctx.db k with
          | None -> s
          | Some act ->
            emit ctx (fun () ->
                Obs.Trace.Feedback_override
                  { digest = k; est = s.Stats.Derive.card; act });
            { s with Stats.Derive.card = act }))
    in
    Hashtbl.replace ctx.stats_memo mask s;
    s

(* ------------------------------------------------------------------ *)
(* Join candidate construction *)

let col_order pairs side =
  List.map (fun (l, r) -> ((if side = `L then l else r), Algebra.Asc)) pairs

(* Build all join candidates combining [left] (composite) with [right]
   (composite when bushy; [right_base] set when it is one base relation). *)
let join_cands ctx ~(left : entry) ~left_mask ~(right : entry) ~right_mask
    ~right_base ~(out_stats : Stats.Derive.rel_stats) : Candidate.t list =
  let p = ctx.cfg.params in
  let preds = crossing_preds ctx ~left:left_mask ~right:right_mask in
  let left_aliases = aliases_of ctx left_mask
  and right_aliases = aliases_of ctx right_mask in
  let pred_expr = Pred.of_conjuncts preds in
  let pairs, residual_list = Pred.equi_pairs ~left:left_aliases ~right:right_aliases preds in
  let residual = Pred.of_conjuncts residual_list in
  let lstats = left.stats and rstats = right.stats in
  let lrows = lstats.Stats.Derive.card and rrows = rstats.Stats.Derive.card in
  let lpages = Stats.Derive.pages lstats and rpages = Stats.Derive.pages rstats in
  let out_rows = out_stats.Stats.Derive.card in
  let count c = ctx.plans_costed <- ctx.plans_costed + 1; c in
  let nl_cands () =
    match Candidate.cheapest right.cands with
    | None -> []
    | Some rc ->
      List.filter_map
        (fun (lc : Candidate.t) ->
           let inner, rescan_cost =
             match right_base with
             | Some _ ->
               ( rc.Candidate.plan,
                 Cost.Cost_model.nested_loop p ~outer_rows:lrows
                   ~inner_rows:rrows ~inner_pages:rpages )
             | None ->
               ( Exec.Plan.Materialize rc.Candidate.plan,
                 p.Cost.Cost_model.cpu_tuple *. lrows *. rrows )
           in
           Some
             (count
                { Candidate.plan =
                    Exec.Plan.Nested_loop
                      { kind = Algebra.Inner; pred = pred_expr;
                        outer = lc.Candidate.plan; inner };
                  cost = lc.Candidate.cost +. rc.Candidate.cost +. rescan_cost;
                  order = lc.Candidate.order }))
        left.cands
  in
  let inl_cands () =
    match right_base with
    | None -> []
    | Some ri ->
      let rel = ctx.rels.(ri) in
      let base_table = Storage.Catalog.table ctx.cat rel.Spj.table in
      let base_rows = float_of_int (Storage.Table.row_count base_table) in
      let base_pages = float_of_int (Storage.Table.page_count base_table) in
      List.concat_map
        (fun (idx : Storage.Btree.t) ->
           (* longest prefix of the index key covered by equi-join pairs *)
           let rec covered cols =
             match cols with
             | [] -> []
             | c :: rest -> (
               match
                 List.find_opt
                   (fun ((_ : Expr.col_ref), r) -> r.Expr.col = c)
                   pairs
               with
               | Some (lcol, _) -> (c, lcol) :: covered rest
               | None -> [])
           in
           let cov = covered idx.Storage.Btree.columns in
           match cov with
           | [] -> []
           | _ ->
             let probe_cols = List.map fst cov in
             let other_pairs =
               List.filter
                 (fun (_, (r : Expr.col_ref)) ->
                    not (List.mem r.Expr.col probe_cols))
                 pairs
             in
             let residual_all =
               Pred.of_conjuncts
                 (List.map
                    (fun ((l : Expr.col_ref), (r : Expr.col_ref)) ->
                       Expr.Cmp (Expr.Eq, Expr.Col l, Expr.Col r))
                    other_pairs
                  @ residual_list @ ctx.locals.(ri))
             in
             let col_ndv c =
               match
                 Stats.Table_stats.find ctx.db rel.Spj.table
                 |> Fun.flip Option.bind (fun ts -> Stats.Table_stats.col ts c)
               with
               | Some cs -> Float.max 1. cs.Stats.Table_stats.n_distinct
               | None -> Float.max 1. base_rows
             in
             let ndv =
               if List.length probe_cols = List.length idx.Storage.Btree.columns
               then
                 (* full key: use the exact distinct-combinations statistic *)
                 Float.max 1. (float_of_int idx.Storage.Btree.distinct_keys)
               else
                 Float.min base_rows
                   (List.fold_left
                      (fun acc c -> acc *. col_ndv c)
                      1. probe_cols)
             in
             List.map
               (fun (lc : Candidate.t) ->
                  count
                    { Candidate.plan =
                        Exec.Plan.Index_nl
                          { kind = Algebra.Inner; outer = lc.Candidate.plan;
                            table = rel.Spj.table; alias = rel.Spj.alias;
                            index = idx.Storage.Btree.name;
                            columns = probe_cols;
                            outer_keys =
                              List.map (fun (_, l) -> Expr.Col l) cov;
                            residual = residual_all };
                      cost =
                        lc.Candidate.cost
                        +. Cost.Cost_model.index_nl p ~outer_rows:lrows
                             ~inner_rows:base_rows ~inner_pages:base_pages
                             ~matches_per_probe:(base_rows /. ndv)
                             ~clustered:idx.Storage.Btree.clustered;
                      order = lc.Candidate.order })
               left.cands)
        (Storage.Catalog.indexes ctx.cat rel.Spj.table)
  in
  let smj_cands () =
    if pairs = [] then []
    else
      let want_l = col_order pairs `L and want_r = col_order pairs `R in
      let lc =
        Candidate.cheapest_with_order ~params:p ~rows:lrows ~pages:lpages
          ~want:want_l left.cands
      and rc =
        Candidate.cheapest_with_order ~params:p ~rows:rrows ~pages:rpages
          ~want:want_r right.cands
      in
      match lc, rc with
      | Some lc, Some rc ->
        [ count
            { Candidate.plan =
                Exec.Plan.Merge_join
                  { kind = Algebra.Inner; pairs; residual;
                    left = lc.Candidate.plan; right = rc.Candidate.plan };
              cost =
                lc.Candidate.cost +. rc.Candidate.cost
                +. Cost.Cost_model.merge_join p ~left_rows:lrows
                     ~right_rows:rrows ~out_rows;
              order = lc.Candidate.order } ]
      | _ -> []
  in
  let hj_cands () =
    if pairs = [] then []
    else
      match Candidate.cheapest right.cands with
      | None -> []
      | Some rc ->
        List.map
          (fun (lc : Candidate.t) ->
             count
               { Candidate.plan =
                   Exec.Plan.Hash_join
                     { kind = Algebra.Inner; pairs; residual;
                       left = lc.Candidate.plan; right = rc.Candidate.plan };
                 cost =
                   lc.Candidate.cost +. rc.Candidate.cost
                   +. Cost.Cost_model.hash_join p ~left_rows:lrows
                        ~right_rows:rrows ~left_pages:lpages
                        ~right_pages:rpages ~out_rows;
                 order = lc.Candidate.order })
          left.cands
  in
  List.concat_map
    (fun m ->
       match m with
       | Nl -> nl_cands ()
       | Inl -> inl_cands ()
       | Smj -> smj_cands ()
       | Hj -> hj_cands ())
    ctx.cfg.methods

(* ------------------------------------------------------------------ *)
(* Enumeration *)

(* Insert candidates, dropping any whose accumulated cost already exceeds
   [bound] — unless it carries an interesting order, which must survive
   pruning: a dearer ordered subplan can still win globally once a sort
   enforcer is priced in above it (Section 3.1). *)
let insert_all ?(bound = infinity) ctx entry cands =
  List.iter
    (fun (c : Candidate.t) ->
       if c.Candidate.cost > bound then
         if ctx.cfg.interesting_orders && c.Candidate.order <> [] then begin
           emit ctx (fun () ->
               Obs.Trace.Order_retained
                 { order = Cost.Physical_props.to_string c.Candidate.order;
                   cost = c.Candidate.cost;
                   bound });
           entry.cands <-
             Candidate.insert ~interesting_orders:ctx.cfg.interesting_orders
               entry.cands c
         end
         else ctx.plans_pruned <- ctx.plans_pruned + 1
       else
         entry.cands <-
           Candidate.insert ~interesting_orders:ctx.cfg.interesting_orders
             entry.cands c)
    cands

let counters_of ctx =
  { subsets = ctx.subsets_created;
    splits = ctx.splits_considered;
    costed = ctx.plans_costed;
    pruned = ctx.plans_pruned }

(* Cost of [e]'s best candidate with the required output order and the
   final projection applied — the cost [finish] would report. *)
let finished_cost ctx (q : Spj.t) (e : entry) : float =
  let rows = e.stats.Stats.Derive.card
  and pages = Stats.Derive.pages e.stats in
  match
    Candidate.cheapest_with_order ~params:ctx.cfg.params ~rows ~pages
      ~want:q.Spj.order_by e.cands
  with
  | None -> infinity
  | Some c ->
    c.Candidate.cost
    +.
    (match q.Spj.projections with
     | None -> 0.
     | Some _ -> Cost.Cost_model.project ctx.cfg.params ~rows)

(* A complete greedy left-deep plan: start from the cheapest access path,
   repeatedly join the connected extension (all extensions under
   [allow_cross] or as the cartesian rescue) yielding the cheapest
   intermediate.  Its *finished* cost — output order and projection
   included — is a sound branch-and-bound upper bound, since costs only
   grow as subplans compose. *)
let greedy_upper_bound ctx (q : Spj.t) : float =
  let n = Array.length ctx.rels in
  let entry_of i =
    let cands, stats = ctx.base.(i) in
    { stats; cands }
  in
  let start = ref 0 and start_cost = ref infinity in
  for i = 0 to n - 1 do
    match Candidate.cheapest (fst ctx.base.(i)) with
    | Some c when c.Candidate.cost < !start_cost ->
      start := i;
      start_cost := c.Candidate.cost
    | _ -> ()
  done;
  let mask = ref (1 lsl !start) and current = ref (entry_of !start) in
  (try
     for _ = 2 to n do
       let exts =
         List.filter
           (fun i -> !mask land (1 lsl i) = 0)
           (List.init n Fun.id)
       in
       let conn =
         List.filter (fun i -> connected_masks ctx !mask (1 lsl i)) exts
       in
       let chosen = if ctx.cfg.allow_cross || conn = [] then exts else conn in
       let step =
         List.fold_left
           (fun acc i ->
              let rmask = 1 lsl i in
              let union = !mask lor rmask in
              let out = { stats = stats_of ctx union; cands = [] } in
              let cands =
                join_cands ctx ~left:!current ~left_mask:!mask
                  ~right:(entry_of i) ~right_mask:rmask ~right_base:(Some i)
                  ~out_stats:out.stats
              in
              insert_all ctx out cands;
              match Candidate.cheapest out.cands, acc with
              | None, _ -> acc
              | Some c, Some (_, _, bc) when c.Candidate.cost >= bc -> acc
              | Some c, _ -> Some (union, out, c.Candidate.cost))
           None chosen
       in
       match step with
       | None -> raise Exit
       | Some (union, out, _) ->
         mask := union;
         current := out
     done
   with Exit -> ());
  if !mask = (1 lsl n) - 1 then finished_cost ctx q !current else infinity

let optimize_entry ?trace ?(config = default_config) cat db (q : Spj.t) :
  ctx * entry =
  let ctx = make_ctx ?trace config cat db q in
  let n = Array.length ctx.rels in
  if n = 0 then invalid_arg "Join_order.optimize: no relations";
  let entries : (int, entry) Hashtbl.t = Hashtbl.create 64 in
  for i = 0 to n - 1 do
    let cands, stats = ctx.base.(i) in
    Hashtbl.replace entries (1 lsl i) { stats; cands };
    ctx.subsets_created <- ctx.subsets_created + 1
  done;
  let full = (1 lsl n) - 1 in
  let get mask = Hashtbl.find_opt entries mask in
  let ensure mask =
    match get mask with
    | Some e -> e
    | None ->
      let e = { stats = stats_of ctx mask; cands = [] } in
      Hashtbl.replace entries mask e;
      ctx.subsets_created <- ctx.subsets_created + 1;
      e
  in
  let gconn = graph_connected ctx in
  (* Branch-and-bound bound, with a little relative slack so a plan
     costing exactly the bound can never be pruned by a float tie.  The
     bound is a complete greedy *left-deep* plan; on a disconnected graph
     the bushy enumerator's per-subset cartesian rescue excludes some
     join-then-cross shapes left-deep extension allows, so the greedy plan
     can fall outside the bushy search space and under-cut its optimum —
     skip pruning there. *)
  let ub =
    if (not config.prune) || n <= 1 || (config.bushy && not gconn) then
      infinity
    else
      let u = greedy_upper_bound ctx q in
      if u = infinity then infinity else u +. Float.max 1e-6 (1e-9 *. u)
  in
  (* One (left, right) combination: count it, apply the pair-level lower
     bound — the cheapest cost any plan of this combination can have —
     then cost and insert.  Index nested loop charges probes rather than a
     scan of the inner side, so the inner's cost only counts when no index
     path exists. *)
  let consider ~(left : entry) ~left_mask ~(right : entry) ~right_mask
      ~right_base out =
    match Candidate.cheapest left.cands, Candidate.cheapest right.cands with
    | None, _ | _, None -> ()
    | Some lc, Some rc ->
      ctx.splits_considered <- ctx.splits_considered + 1;
      let right_may_be_free =
        match right_base with
        | Some i -> ctx.has_index.(i) && List.mem Inl ctx.cfg.methods
        | None -> false
      in
      let lb =
        if right_may_be_free then lc.Candidate.cost
        else lc.Candidate.cost +. rc.Candidate.cost
      in
      if lb > ub then begin
        ctx.plans_pruned <- ctx.plans_pruned + 1;
        emit ctx (fun () ->
            Obs.Trace.Prune
              { left_mask; right_mask; lower_bound = lb; bound = ub })
      end
      else
        insert_all ~bound:ub ctx out
          (join_cands ctx ~left ~left_mask ~right ~right_mask ~right_base
             ~out_stats:out.stats)
  in
  (* Per-level enumeration counters (level = relations in the union mask),
     accumulated from snapshot deltas around each enumeration step; the
     snapshots are only taken when tracing. *)
  let levels = Array.make (n + 1) counters_zero in
  let at_level lvl body =
    match ctx.trace with
    | None -> body ()
    | Some _ ->
      let before = counters_of ctx in
      body ();
      levels.(lvl) <-
        counters_add levels.(lvl) (counters_sub (counters_of ctx) before)
  in
  if not config.bushy then begin
    (* left-deep, by subset size *)
    for size = 1 to n - 1 do
      (* masks of this size may be created during this pass; snapshot *)
      let masks =
        Hashtbl.fold (fun m _ acc -> if popcount m = size then m :: acc else acc)
          entries []
        |> List.sort_uniq compare
      in
      at_level (size + 1) @@ fun () ->
      List.iter
        (fun mask ->
           let left = Hashtbl.find entries mask in
           let exts =
             List.filter (fun i -> mask land (1 lsl i) = 0) (List.init n Fun.id)
           in
           let connected_exts =
             List.filter
               (fun i ->
                  if config.graph_dp then connected_masks ctx mask (1 lsl i)
                  else legacy_connected ctx mask (1 lsl i))
               exts
           in
           let chosen =
             if config.allow_cross then exts
             else if connected_exts <> [] then connected_exts
             else exts (* rescue: disconnected graph needs a cross product *)
           in
           List.iter
             (fun i ->
                let rmask = 1 lsl i in
                let right = Hashtbl.find entries rmask in
                let out = ensure (mask lor rmask) in
                consider ~left ~left_mask:mask ~right ~right_mask:rmask
                  ~right_base:(Some i) out)
             chosen)
        masks
    done
  end
  else begin
    if config.graph_dp && (not config.allow_cross) && gconn && n >= 2 then begin
      (* csg–cmp generation: union masks in increasing numeric order (every
         proper submask is smaller, hence already final), and within each
         connected union, connected subgraphs containing its lowest
         relation paired with connected complements.  Each unordered pair
         surfaces once — the side holding the lowest bit is the csg — and
         is costed in both orders. *)
      for mask = 3 to full do
        if mask land (mask - 1) <> 0 && mask_connected ctx mask then
          at_level (popcount mask) @@ fun () ->
          let out = ensure mask in
          let consider_pair s1 =
            let s2 = mask land lnot s1 in
            if s2 <> 0 && mask_connected ctx s2 && connected_masks ctx s1 s2
            then
              match get s1, get s2 with
              | Some left, Some right ->
                let base_of s =
                  if s land (s - 1) = 0 then Some (lowest_bit_index s)
                  else None
                in
                consider ~left ~left_mask:s1 ~right ~right_mask:s2
                  ~right_base:(base_of s2) out;
                consider ~left:right ~left_mask:s2 ~right:left ~right_mask:s1
                  ~right_base:(base_of s1) out
              | _ -> ()
          in
          (* neighborhood for growing a connected subgraph: adjacency plus
             relations reachable through a hyperedge contained in [mask] *)
          let nbhood s x =
            let hyper_nb =
              Array.fold_left
                (fun acc hm ->
                   if hm land s <> 0 && hm land lnot mask = 0 then acc lor hm
                   else acc)
                0 ctx.hyper
            in
            (neighbor_mask ctx s lor hyper_nb)
            land mask land lnot s land lnot x
          in
          let rec csg_rec s x =
            let nb = nbhood s x in
            if nb <> 0 then begin
              let sub = ref nb in
              while !sub <> 0 do
                consider_pair (s lor !sub);
                sub := (!sub - 1) land nb
              done;
              let x' = x lor nb in
              let sub = ref nb in
              while !sub <> 0 do
                csg_rec (s lor !sub) x';
                sub := (!sub - 1) land nb
              done
            end
          in
          let low = mask land -mask in
          consider_pair low;
          csg_rec low low
      done
    end
    else begin
      (* every subset, every split — the pre-change enumerator, reached
         when [graph_dp] is off (the measured baseline), under
         [allow_cross], and as the cartesian rescue when the whole graph
         is disconnected.  A merely-disconnected intermediate subset is
         simply skipped, as in standard connected-subgraph enumeration. *)
      for mask = 1 to full do
        if mask land (mask - 1) <> 0 then
          at_level (popcount mask) @@ fun () ->
          let out = ensure mask in
          let splits = ref [] in
          let s = ref ((mask - 1) land mask) in
          while !s > 0 do
            let s1 = !s and s2 = mask land lnot !s in
            if s2 <> 0 then splits := (s1, s2) :: !splits;
            s := (!s - 1) land mask
          done;
          let with_conn =
            List.filter
              (fun (s1, s2) ->
                 if config.graph_dp then connected_masks ctx s1 s2
                 else legacy_connected ctx s1 s2)
              !splits
          in
          let chosen =
            if config.allow_cross then !splits
            else if with_conn <> [] then with_conn
            else if not gconn then !splits
            else []
          in
          List.iter
            (fun (s1, s2) ->
               match get s1, get s2 with
               | Some left, Some right ->
                 let right_base =
                   if s2 land (s2 - 1) = 0 then Some (lowest_bit_index s2)
                   else None
                 in
                 consider ~left ~left_mask:s1 ~right ~right_mask:s2
                   ~right_base out
               | _ -> ())
            chosen
      done
    end
  end;
  (match ctx.trace with
   | None -> ()
   | Some sink ->
     Array.iteri
       (fun level c ->
          if c <> counters_zero then
            sink
              (Obs.Trace.Enum_level
                 { level; subsets = c.subsets; splits = c.splits;
                   costed = c.costed; pruned = c.pruned }))
       levels;
     sink
       (Obs.Trace.Memo_stats
          { table = "subset_stats";
            hits = ctx.memo_hits;
            misses = Hashtbl.length ctx.stats_memo }));
  (ctx, Hashtbl.find entries full)

let finish ctx (q : Spj.t) (final : entry) : result =
  let stats = final.stats in
  let rows = stats.Stats.Derive.card and pages = Stats.Derive.pages stats in
  let best =
    match
      Candidate.cheapest_with_order ~params:ctx.cfg.params ~rows ~pages
        ~want:q.Spj.order_by final.cands
    with
    | Some c -> c
    | None -> invalid_arg "Join_order: no plan found"
  in
  let best =
    match q.Spj.projections with
    | None -> best
    | Some items ->
      { best with
        Candidate.plan = Exec.Plan.Project (items, best.Candidate.plan);
        cost = best.Candidate.cost +. Cost.Cost_model.project ctx.cfg.params ~rows }
  in
  { best;
    card = stats.Stats.Derive.card;
    counters = counters_of ctx }

let optimize ?trace ?config cat db (q : Spj.t) : result =
  let ctx, final = optimize_entry ?trace ?config cat db q in
  finish ctx q final
