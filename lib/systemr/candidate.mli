(** Candidate plans with cost and delivered order, pruned to the Pareto
    frontier over (cost, order) — exactly System-R's interesting-orders
    mechanism (Section 3).

    Frontier lists built through [insert] are sorted by ascending cost;
    [cheapest] is the head and dominance scans stop at the first dearer
    candidate. *)

type t = {
  plan : Exec.Plan.t;
  cost : float;
  order : Cost.Physical_props.order;
}

(** [a] dominates [b] when it is no dearer and delivers at least as strong
    an order. *)
val dominates : t -> t -> bool

(** Insert with pruning, maintaining the ascending-cost invariant.  With
    [interesting_orders:false] the order is ignored and a single cheapest
    plan survives — the broken pruning that experiment E2 shows to be
    globally suboptimal. *)
val insert : interesting_orders:bool -> t list -> t -> t list

(** Head of the cost-sorted frontier. *)
val cheapest : t list -> t option

(** Cheapest way to deliver [want]: an already-ordered candidate or the
    cheapest one plus a sort enforcer. *)
val cheapest_with_order :
  params:Cost.Cost_model.params -> rows:float -> pages:float ->
  want:Cost.Physical_props.order -> t list -> t option
