(** Bottom-up dynamic-programming join enumeration (Section 3): left-deep
    or bushy trees, Cartesian-product deferral, interesting orders
    (per-subset Pareto candidate sets), pluggable join methods.

    The enumeration is graph-aware: a bitset query graph (per-predicate
    relation masks, per-relation neighbor masks) is precomputed once per
    query, bushy mode pairs connected subgraphs with connected complements
    (csg–cmp generation) instead of walking all splits, and a greedy
    left-deep plan seeds a branch-and-bound upper bound.  [exhaustive]
    restores the pre-change all-masks/all-splits search — the equivalence
    oracle, benchmark baseline, and cartesian rescue path.

    The lower-level pieces ([ctx], [entry], [join_cands], ...) are exposed
    for the naive enumerator and the Cascades optimizer, which share this
    module's statistics and costing machinery. *)

open Relalg

type meth = Nl | Inl | Smj | Hj

type config = {
  params : Cost.Cost_model.params;
  asm : Stats.Derive.assumption;
  allow_cross : bool;  (** permit Cartesian products freely *)
  interesting_orders : bool;  (** keep per-order bests, not one cheapest *)
  bushy : bool;  (** all splits instead of left-deep extensions *)
  methods : meth list;
  graph_dp : bool;
  (** bitset-graph connectivity and csg–cmp bushy enumeration (on by
      default); off = the pre-change alias-scanning enumerator *)
  prune : bool;
  (** branch-and-bound against a greedy upper bound (on by default);
      interesting-order candidates are exempt *)
  feedback : Stats.Feedback.t option;
  (** observed-cardinality cache consulted by [stats_of]: a fresh entry
      for a subset's logical subexpression overrides the derived
      cardinality (off by default) *)
}

val default_config : config

(** The 1979 repertoire: nested loop, index nested loop, sort-merge;
    linear trees; Cartesian products deferred. *)
val system_r_1979 : config

(** The same search without graph awareness or pruning — the pre-change
    enumerator, kept as the equivalence oracle and benchmark baseline. *)
val exhaustive : config -> config

(** Enumeration-effort counters, reported per optimization and summed per
    query by the pipeline. *)
type counters = {
  subsets : int;  (** DP table entries created *)
  splits : int;  (** (left, right) combinations considered *)
  costed : int;  (** physical join candidates built and costed *)
  pruned : int;  (** combinations / candidates dropped by the cost bound *)
}

val counters_zero : counters
val counters_add : counters -> counters -> counters

(** Shared optimization state: base access paths, the bitset query graph,
    subset statistics memo, effort counters. *)
type ctx = {
  cfg : config;
  cat : Storage.Catalog.t;
  db : Stats.Table_stats.db;
  rels : Spj.relation array;
  locals : Expr.t list array;
  join_preds : Expr.t list;
  pred_masks : (Expr.t * int) array;
      (** every join conjunct with the mask of relations it mentions *)
  neighbors : int array;
      (** per-relation adjacency mask over two-relation conjuncts *)
  hyper : int array;
      (** masks of conjuncts spanning three or more relations *)
  has_index : bool array;
  base : (Candidate.t list * Stats.Derive.rel_stats) array;
  stats_memo : (int, Stats.Derive.rel_stats) Hashtbl.t;
  trace : (Obs.Trace.event -> unit) option;
      (** optimizer-trace sink; [None] = tracing off (no event is built) *)
  mutable plans_costed : int;
  mutable splits_considered : int;
  mutable plans_pruned : int;
  mutable subsets_created : int;
  mutable memo_hits : int;
      (** subset-statistics lookups served from the memo *)
}

(** Per-subset entry: logical statistics plus the Pareto candidate set. *)
type entry = {
  stats : Stats.Derive.rel_stats;
  mutable cands : Candidate.t list;
}

type result = {
  best : Candidate.t;
  card : float;
  counters : counters;
}

val popcount : int -> int
val lowest_bit_index : int -> int

(** [trace] receives typed optimizer events (per-level enumeration
    counters, branch-and-bound prunes, interesting-order retentions,
    memo statistics) as the search runs; omitted = tracing off.
    @raise Invalid_argument beyond 60 relations (bitset width). *)
val make_ctx :
  ?trace:(Obs.Trace.event -> unit) ->
  config -> Storage.Catalog.t -> Stats.Table_stats.db -> Spj.t -> ctx

val aliases_of : ctx -> int -> string list

(** Join conjuncts crossing the (left, right) partition and contained in
    its union — two [land]s per conjunct. *)
val crossing_preds : ctx -> left:int -> right:int -> Expr.t list

(** Does any conjunct cross (m1, m2) while staying contained in the
    union? *)
val connected_masks : ctx -> int -> int -> bool

(** Is [mask] connected under the conjuncts contained in it?  Necessary
    for the subset to acquire any join candidate without cross products. *)
val mask_connected : ctx -> int -> bool

(** Can the full relation set be grown one relation at a time without a
    cross product?  False triggers the cartesian rescue. *)
val graph_connected : ctx -> bool

(** Canonical subset statistics (independent of how the subset's plans are
    built — a logical property).  When [config.feedback] is set and holds
    a fresh actual for the subset's logical subexpression, the observed
    cardinality overrides the derived one. *)
val stats_of : ctx -> int -> Stats.Derive.rel_stats

(** Feedback-cache key of a subset: its (alias, table) pairs plus every
    conjunct applied anywhere within it.  [None] when the subset involves
    a materialized-view temp table (unstable generated names). *)
val feedback_key : ctx -> int -> Stats.Feedback.key option

(** All join candidates combining [left] with [right] ([right_base] set
    when the right side is one base relation, enabling index nested
    loops). *)
val join_cands :
  ctx -> left:entry -> left_mask:int -> right:entry -> right_mask:int ->
  right_base:int option -> out_stats:Stats.Derive.rel_stats ->
  Candidate.t list

(** Insert candidates into the entry's Pareto set; candidates dearer than
    [bound] are dropped (counted as pruned) unless they carry an
    interesting order. *)
val insert_all : ?bound:float -> ctx -> entry -> Candidate.t list -> unit

(** Run the enumeration, returning the context and the full-set entry. *)
val optimize_entry :
  ?trace:(Obs.Trace.event -> unit) -> ?config:config ->
  Storage.Catalog.t -> Stats.Table_stats.db -> Spj.t -> ctx * entry

(** Apply the required output order and projection to the best candidate. *)
val finish : ctx -> Spj.t -> entry -> result

(** End-to-end optimization.  @raise Invalid_argument on empty queries. *)
val optimize :
  ?trace:(Obs.Trace.event -> unit) -> ?config:config ->
  Storage.Catalog.t -> Stats.Table_stats.db -> Spj.t -> result
