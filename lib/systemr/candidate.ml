(* A candidate physical plan for some subexpression, with its estimated
   cost and delivered order.  Candidate sets are pruned to the Pareto
   frontier over (cost, order): keeping per-order bests is exactly
   System-R's interesting-orders mechanism (Section 3).

   Invariant: every candidate list built through [insert] is sorted by
   ascending cost.  [cheapest] is therefore the head, and [insert] can
   stop its dominance scan at the first dearer candidate. *)

type t = {
  plan : Exec.Plan.t;
  cost : float;
  order : Cost.Physical_props.order;
}

(* [a] dominates [b] when [a] is no more expensive and delivers at least as
   strong an order ([b]'s order is a prefix of [a]'s). *)
let dominates a b =
  a.cost <= b.cost
  && Cost.Physical_props.satisfies ~have:a.order ~want:b.order

(* Insert with pruning, maintaining the ascending-cost invariant.  When
   [interesting_orders] is false the order is ignored and a single cheapest
   plan survives — the broken pruning that experiment E2 shows to be
   globally suboptimal. *)
let insert ~interesting_orders (cands : t list) (c : t) : t list =
  if not interesting_orders then
    match cands with
    | [] -> [ c ]
    | best :: _ -> if c.cost < best.cost then [ c ] else cands
  else
    (* One pass: in the no-dearer prefix, anything delivering [c]'s order
       dominates [c]; an equal-cost candidate with a weaker order is
       dominated by [c] and dropped; past the insertion point everything
       is dearer, so dominance over the tail reduces to the order check
       alone. *)
    let rec go acc = function
      | c' :: rest when c'.cost <= c.cost ->
        if Cost.Physical_props.satisfies ~have:c'.order ~want:c.order then
          cands (* dominated: frontier unchanged *)
        else if
          c'.cost = c.cost
          && Cost.Physical_props.satisfies ~have:c.order ~want:c'.order
        then go acc rest
        else go (c' :: acc) rest
      | rest ->
        let rest' =
          List.filter
            (fun c' ->
               not (Cost.Physical_props.satisfies ~have:c.order ~want:c'.order))
            rest
        in
        List.rev_append acc (c :: rest')
    in
    go [] cands

(* Head of the cost-sorted frontier. *)
let cheapest (cands : t list) : t option =
  match cands with [] -> None | c :: _ -> Some c

(* Cheapest way to deliver [want]: either a candidate already ordered
   suitably, or the cheapest candidate plus a sort enforcer. *)
let cheapest_with_order ~params ~rows ~pages ~want (cands : t list) :
  t option =
  let direct =
    List.find_opt
      (fun c -> Cost.Physical_props.satisfies ~have:c.order ~want)
      cands
  in
  let enforced =
    match cheapest cands with
    | None -> None
    | Some c ->
      let keys =
        List.map
          (fun ((col : Relalg.Expr.col_ref), d) ->
             { Exec.Plan.key = Relalg.Expr.Col col;
               descending = (d = Relalg.Algebra.Desc) })
          want
      in
      Some
        { plan = Exec.Plan.Sort (keys, c.plan);
          cost = c.cost +. Cost.Cost_model.sort params ~pages ~rows;
          order = want }
  in
  match direct, enforced with
  | None, x | x, None -> x
  | Some d, Some e -> Some (if d.cost <= e.cost then d else e)
