(* Top-down, memoized optimization (Volcano/Cascades, Section 6.2).

   - Transformation rules (commutativity, associativity) expand each group's
     multi-expression set during exploration; associativity creates new
     groups on demand ("goal-driven" expansion, versus Starburst's forward
     chaining).
   - Implementation rules map a logical split to physical joins; leaves use
     access-path selection.  A sort enforcer bridges order requirements.
   - Memoization: each group is explored and optimized at most once; its
     winners (a Pareto set over cost x order, i.e. per-physical-property
     bests) are reused by every parent — "looking up the table of plans
     optimized in the past".
   - Promise: joins are attempted cheapest-expected-first, and a simple
     upper bound prunes implementations that cannot beat the incumbent. *)


type config = {
  join_config : Systemr.Join_order.config;
  allow_bushy_rules : bool; (* associativity generates bushy shapes *)
}

let default_config =
  { join_config = { Systemr.Join_order.default_config with bushy = true };
    allow_bushy_rules = true }

type result = {
  best : Systemr.Candidate.t;
  card : float;
  groups : int;
  exprs : int;
  rule_firings : int;
  plans_costed : int;
  diags : Verify.Diag.t list; (* lint findings; [] unless ~lint:true *)
}

type ctx = {
  memo : Memo.t;
  jctx : Systemr.Join_order.ctx; (* shared stats/cost machinery *)
  cfg : config;
}

(* Group statistics come from the shared [Join_order.stats_of], so a
   configured feedback cache ([join_config.feedback]) overrides group
   cardinalities here exactly as in the bottom-up enumerator: the memo
   group is the logical subexpression the cache keys identify. *)
let group_for ctx mask : Memo.group =
  Memo.find_or_create ctx.memo ~mask
    ~stats:(Systemr.Join_order.stats_of ctx.jctx mask)

let mask_of_group (g : Memo.group) = g.Memo.mask

(* ------------------------------------------------------------------ *)
(* Exploration: apply transformation rules to fixpoint *)

let connected ctx m1 m2 =
  Systemr.Join_order.connected_masks ctx.jctx m1 m2

let rec explore (ctx : ctx) (g : Memo.group) : unit =
  if not g.Memo.explored then begin
    g.Memo.explored <- true;
    (* commutativity + associativity to fixpoint over this group's exprs;
       associativity is goal-driven: it creates the (B join C) group on
       demand rather than eagerly rewriting the whole query *)
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun e ->
           match e with
           | Memo.Leaf _ -> ()
           | Memo.Split (lm, rm) ->
             let gl = group_for ctx lm in
             explore ctx gl;
             explore ctx (group_for ctx rm);
             (* commute: Join(A, B) -> Join(B, A) *)
             ctx.memo.Memo.rule_firings <- ctx.memo.Memo.rule_firings + 1;
             if Memo.add_expr ctx.memo g (Memo.Split (rm, lm)) then
               changed := true;
             (* associate: (A join B) join C -> A join (B join C) *)
             if ctx.cfg.allow_bushy_rules then
               List.iter
                 (fun le ->
                    match le with
                    | Memo.Leaf _ -> ()
                    | Memo.Split (am, bm) ->
                      let ok =
                        ctx.cfg.join_config.Systemr.Join_order.allow_cross
                        || connected ctx bm rm
                      in
                      if ok then begin
                        ctx.memo.Memo.rule_firings <-
                          ctx.memo.Memo.rule_firings + 1;
                        let bc = bm lor rm in
                        let gbc = group_for ctx bc in
                        if Memo.add_expr ctx.memo gbc (Memo.Split (bm, rm))
                        then changed := true;
                        if Memo.add_expr ctx.memo g (Memo.Split (am, bc))
                        then changed := true
                      end)
                 gl.Memo.exprs)
        g.Memo.exprs
    done
  end

(* ------------------------------------------------------------------ *)
(* Optimization *)

let rec optimize_group (ctx : ctx) (g : Memo.group) : unit =
  if not g.Memo.optimized then begin
    g.Memo.optimized <- true;
    explore ctx g;
    let insert c =
      g.Memo.winners <-
        Systemr.Candidate.insert ~interesting_orders:true g.Memo.winners c
    in
    (* promise: order splits by estimated output card of the smaller side *)
    let splits =
      List.filter_map
        (function Memo.Leaf _ -> None | Memo.Split (l, r) -> Some (l, r))
        g.Memo.exprs
    in
    let promise (l, r) =
      let sl = (group_for ctx l).Memo.stats and sr = (group_for ctx r).Memo.stats in
      sl.Stats.Derive.card +. sr.Stats.Derive.card
    in
    let splits =
      List.sort (fun a b -> Float.compare (promise a) (promise b)) splits
    in
    List.iter
      (function
        | Memo.Leaf i ->
          let cands, _ = ctx.jctx.Systemr.Join_order.base.(i) in
          List.iter insert cands
        | _ -> ())
      g.Memo.exprs;
    List.iter
      (fun (lm, rm) ->
         let gl = group_for ctx lm and gr = group_for ctx rm in
         optimize_group ctx gl;
         optimize_group ctx gr;
         (* upper bound: the cheapest incumbent for this group *)
         let bound =
           match Systemr.Candidate.cheapest g.Memo.winners with
           | Some c -> c.Systemr.Candidate.cost
           | None -> infinity
         in
         let lbest = Systemr.Candidate.cheapest gl.Memo.winners in
         (match lbest with
          | Some lb when lb.Systemr.Candidate.cost >= bound -> () (* pruned *)
          | _ ->
            let right_base =
              match gr.Memo.exprs with
              | [ Memo.Leaf i ] -> Some i
              | _ -> None
            in
            let left_entry =
              { Systemr.Join_order.stats = gl.Memo.stats;
                cands = gl.Memo.winners }
            and right_entry =
              { Systemr.Join_order.stats = gr.Memo.stats;
                cands = gr.Memo.winners }
            in
            let cands =
              Systemr.Join_order.join_cands ctx.jctx ~left:left_entry
                ~left_mask:lm ~right:right_entry ~right_mask:rm ~right_base
                ~out_stats:g.Memo.stats
            in
            List.iter insert cands))
      splits
  end

(* ------------------------------------------------------------------ *)
(* Entry point *)

let optimize ?(config = default_config) ?(lint = false) cat db
    (q : Systemr.Spj.t) : result =
  let jctx = Systemr.Join_order.make_ctx config.join_config cat db q in
  let memo = Memo.create () in
  let ctx = { memo; jctx; cfg = config } in
  let n = Array.length jctx.Systemr.Join_order.rels in
  if n = 0 then invalid_arg "Cascades: no relations";
  (* seed: canonical left-deep tree in declaration order *)
  let leaf i =
    let g = group_for ctx (1 lsl i) in
    ignore (Memo.add_expr memo g (Memo.Leaf i));
    g
  in
  let root =
    let rec build acc i =
      if i = n then acc
      else begin
        let r = leaf i in
        let mask = mask_of_group acc lor mask_of_group r in
        let g = group_for ctx mask in
        ignore
          (Memo.add_expr memo g
             (Memo.Split (mask_of_group acc, mask_of_group r)));
        build g (i + 1)
      end
    in
    build (leaf 0) 1
  in
  optimize_group ctx root;
  let stats = root.Memo.stats in
  let rows = stats.Stats.Derive.card and pages = Stats.Derive.pages stats in
  let best =
    match
      Systemr.Candidate.cheapest_with_order
        ~params:config.join_config.Systemr.Join_order.params ~rows ~pages
        ~want:q.Systemr.Spj.order_by root.Memo.winners
    with
    | Some c -> c
    | None -> invalid_arg "Cascades: no plan"
  in
  let best =
    match q.Systemr.Spj.projections with
    | None -> best
    | Some items ->
      { best with
        Systemr.Candidate.plan =
          Exec.Plan.Project (items, best.Systemr.Candidate.plan);
        cost =
          best.Systemr.Candidate.cost
          +. Cost.Cost_model.project
               config.join_config.Systemr.Join_order.params ~rows }
  in
  let diags =
    if lint then Verify.physical cat best.Systemr.Candidate.plan else []
  in
  { best;
    card = stats.Stats.Derive.card;
    groups = Memo.group_count memo;
    exprs = memo.Memo.expr_count;
    rule_firings = memo.Memo.rule_firings;
    plans_costed = jctx.Systemr.Join_order.plans_costed;
    diags }
