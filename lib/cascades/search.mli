(** Top-down memoized optimization (Volcano/Cascades, Section 6.2):
    transformation rules (commutativity, associativity) expand groups
    goal-driven during exploration; implementation rules map splits to
    physical joins; winners per physical property are memoized and reused;
    a promise ordering and an upper bound prune the implementation loop. *)

type config = {
  join_config : Systemr.Join_order.config;
  allow_bushy_rules : bool;  (** associativity generates bushy shapes *)
}

val default_config : config

type result = {
  best : Systemr.Candidate.t;
  card : float;
  groups : int;
  exprs : int;
  rule_firings : int;
  plans_costed : int;
  diags : Verify.Diag.t list;  (** lint findings; [[]] unless [~lint:true] *)
}

(** Optimize an SPJ query.  [lint] runs {!Verify.physical} over the winning
    plan.  @raise Invalid_argument on empty queries. *)
val optimize :
  ?config:config -> ?lint:bool -> Storage.Catalog.t -> Stats.Table_stats.db ->
  Systemr.Spj.t -> result
