(* The memo: groups of logically equivalent expressions (Section 6.2).

   For SPJ queries with a fixed global conjunct list, two join trees are
   logically equivalent iff they cover the same set of base relations —
   every conjunct is applied at the lowest node covering its relations.  A
   group is therefore keyed by its relation subset (a bitmask), its logical
   property is the subset's statistical summary, and its multi-expressions
   are the splits (or the base scan).  Winners per required physical
   property are kept as a Pareto set over (cost, delivered order), exactly
   the interesting-orders structure generalized to properties.

   Logical expressions are hash-consed: every [lexpr] is interned into a
   global table mapping it to a small id on first sight.  Because an
   expression's group is determined by its relation mask (Leaf i -> bit i,
   Split (l, r) -> l lor r), membership in the intern table alone answers
   "has this group seen this expression" — duplicate detection is one
   hashtable probe instead of a scan of the group's expression list. *)

type group_id = int

type lexpr =
  | Leaf of int (* relation index *)
  | Split of group_id * group_id (* left join right *)

type group = {
  id : group_id;
  mask : int;
  stats : Stats.Derive.rel_stats;
  mutable exprs : lexpr list;
  mutable explored : bool;
  mutable winners : Systemr.Candidate.t list; (* Pareto over (cost, order) *)
  mutable optimized : bool;
}

type t = {
  groups : (int, group) Hashtbl.t; (* mask -> group *)
  interned : (lexpr, int) Hashtbl.t; (* hash-consed exprs -> intern id *)
  mutable next_id : int;
  mutable expr_count : int;
  mutable rule_firings : int;
  mutable intern_hits : int; (* duplicate lexprs caught by the intern table *)
}

let create () =
  { groups = Hashtbl.create 64;
    interned = Hashtbl.create 256;
    next_id = 0;
    expr_count = 0;
    rule_firings = 0;
    intern_hits = 0 }

let find_or_create (m : t) ~mask ~stats : group =
  match Hashtbl.find_opt m.groups mask with
  | Some g -> g
  | None ->
    let g =
      { id = m.next_id; mask; stats; exprs = []; explored = false;
        winners = []; optimized = false }
    in
    m.next_id <- m.next_id + 1;
    Hashtbl.replace m.groups mask g;
    g

(* Intern [e], returning its id; a fresh id means it was never seen. *)
let intern (m : t) (e : lexpr) : int =
  match Hashtbl.find_opt m.interned e with
  | Some id -> id
  | None ->
    let id = Hashtbl.length m.interned in
    Hashtbl.replace m.interned e id;
    id

let add_expr (m : t) (g : group) (e : lexpr) : bool =
  (* an lexpr belongs to exactly one group (its mask), so global
     membership implies membership in [g] *)
  if Hashtbl.mem m.interned e then begin
    m.intern_hits <- m.intern_hits + 1;
    false
  end
  else begin
    ignore (intern m e);
    g.exprs <- e :: g.exprs;
    m.expr_count <- m.expr_count + 1;
    true
  end

let group_count (m : t) = Hashtbl.length m.groups

let stats_line (m : t) =
  Printf.sprintf "groups=%d exprs=%d rule-firings=%d intern-hits=%d"
    (group_count m) m.expr_count m.rule_firings m.intern_hits
