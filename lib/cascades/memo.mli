(** The memo (Section 6.2): groups of logically equivalent expressions.

    For SPJ queries with a fixed global conjunct list, two join trees are
    equivalent iff they cover the same relation subset, so groups are keyed
    by subset bitmasks; a group's logical property is the subset's
    statistical summary, its multi-expressions are the splits, and its
    winners are a Pareto set over (cost, delivered order) — per-physical-
    property bests.

    Logical expressions are hash-consed into a global intern table, making
    duplicate detection one hashtable probe instead of a scan of the
    group's expression list. *)

type group_id = int

type lexpr =
  | Leaf of int  (** relation index *)
  | Split of group_id * group_id  (** left join right (group masks) *)

type group = {
  id : group_id;
  mask : int;
  stats : Stats.Derive.rel_stats;
  mutable exprs : lexpr list;
  mutable explored : bool;
  mutable winners : Systemr.Candidate.t list;
  mutable optimized : bool;
}

type t = {
  groups : (int, group) Hashtbl.t;  (** mask -> group *)
  interned : (lexpr, int) Hashtbl.t;  (** hash-consed exprs -> intern id *)
  mutable next_id : int;
  mutable expr_count : int;
  mutable rule_firings : int;
  mutable intern_hits : int;
      (** duplicate lexprs caught by the intern table *)
}

val create : unit -> t

(** Find the group for a mask, creating it with the given logical stats. *)
val find_or_create : t -> mask:int -> stats:Stats.Derive.rel_stats -> group

(** Intern an expression, returning its id (stable across calls). *)
val intern : t -> lexpr -> int

(** Add a multi-expression, deduplicated in O(1) via the intern table;
    true when new. *)
val add_expr : t -> group -> lexpr -> bool

val group_count : t -> int
val stats_line : t -> string
