(** Process-wide monotonic clock: [Unix.gettimeofday] clamped to be
    non-decreasing process-wide, so intervals (spans, operator wall
    times, worker timelines, bench timings) can never go negative under
    a wall-clock adjustment.  Safe to call from any domain.

    Re-exported as [Obs.Clock]; use that alias outside [exec]. *)

(** Current time in seconds (Unix epoch based, monotonic non-decreasing). *)
val now : unit -> float

(** [elapsed_s t0] = [now () -. t0], clamped to [>= 0]. *)
val elapsed_s : float -> float
