(* Process-wide monotonic clock.

   The tree has no dependency exposing CLOCK_MONOTONIC, so this clamps
   [Unix.gettimeofday] to be non-decreasing across the whole process: a
   wall-clock step backwards (NTP adjustment, manual reset) freezes the
   reading instead of producing negative spans.  The clamp is shared by
   every caller — instrumentation frames, morsel workers on other
   domains, span recorders, bench timing — so intervals measured against
   each other stay ordered.

   Lock-free: a single CAS-updated cell holds the latest reading. *)

let last : float Atomic.t = Atomic.make 0.

let rec now () : float =
  let t = Unix.gettimeofday () in
  let l = Atomic.get last in
  if t >= l then if Atomic.compare_and_set last l t then t else now ()
  else l (* wall clock went backwards: hold the high-water mark *)

let elapsed_s (t0 : float) : float = Float.max 0. (now () -. t0)
