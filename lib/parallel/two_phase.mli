(** Two-phase parallel optimization (Section 7.1, XPRS [31,32] and Hasan
    [28]): decompose a phase-1 plan into pipelined segments separated by
    blocking operators, derive each segment's work, parallelism cap and
    produced partitioning (a physical property), then schedule segments
    wave by wave.  [partition_aware = false] reproduces XPRS's phase 2
    (every join repartitions both inputs); [true] reuses compatible
    upstream partitioning, after Hasan. *)

open Relalg

type partitioning =
  | Any  (** round-robin / unknown *)
  | On of Expr.col_ref list  (** hash-partitioned on these columns *)

type segment = {
  id : int;
  ops : string list;
  work : float;
  max_dop : float;  (** parallelizability cap *)
  comm_rows : float;  (** rows repartitioned to feed this segment *)
  deps : int list;  (** blocking predecessors *)
  produces : partitioning;
}

type schedule = {
  segments : segment list;
  response_time : float;
  total_work : float;
  comm_cost : float;
}

type config = {
  params : Cost.Cost_model.params;
  processors : int;
  partition_aware : bool;
  comm_cost_per_row : float;
}

val default_config : config

val compatible : partitioning -> partitioning -> bool

(** Phase-2 segment extraction from a physical plan. *)
val decompose :
  config -> Storage.Catalog.t -> Stats.Table_stats.db -> Exec.Plan.t ->
  segment list

(** [node_dop cfg cat db plan] maps each node of [plan] (by physical
    identity) to the degree of parallelism its segment was scheduled
    at: the segment's [max_dop] cap clamped to [cfg.processors].  The
    morsel executor uses this as its per-node schedule, so phase-2
    decisions govern the actual intra-operator parallelism. *)
val node_dop :
  config -> Storage.Catalog.t -> Stats.Table_stats.db -> Exec.Plan.t ->
  Exec.Plan.t -> int

(** Topological waves of malleable tasks. *)
val schedule_segments : config -> segment list -> schedule

(** {!decompose} then {!schedule_segments}. *)
val run :
  ?config:config -> Storage.Catalog.t -> Stats.Table_stats.db -> Exec.Plan.t ->
  schedule

val pp_schedule : Format.formatter -> schedule -> unit
