(* Two-phase parallel optimization (Section 7.1, XPRS [31,32] and Hasan
   [28]).

   Phase 1 produced a single-site physical plan (any of our optimizers).
   Phase 2 decomposes it into pipelined segments separated by blocking
   operators (sort, hash build, materialize, aggregation), derives each
   segment's work, degree-of-parallelism cap, and the *partitioning* of the
   stream it produces (a physical property, after Hasan), then schedules
   segments wave by wave over [processors].

   Communication: a join input not already partitioned on the join key must
   be repartitioned — cost proportional to the rows moved.
   [partition_aware = false] reproduces XPRS's phase 2, which ignores
   partitioning reuse (every join repartitions both inputs); [true]
   reproduces Hasan's improvement, treating the partitioning attribute as a
   physical property and reusing compatible upstream partitioning. *)

open Relalg

type partitioning =
  | Any (* round-robin / unknown *)
  | On of Expr.col_ref list (* hash-partitioned on these columns *)

type segment = {
  id : int;
  ops : string list; (* operator names, for display *)
  work : float;
  max_dop : float; (* parallelizability cap (e.g. pages of its scans) *)
  comm_rows : float; (* rows repartitioned to feed this segment *)
  deps : int list; (* blocking predecessors *)
  produces : partitioning;
}

type schedule = {
  segments : segment list;
  response_time : float;
  total_work : float;
  comm_cost : float;
}

type config = {
  params : Cost.Cost_model.params;
  processors : int;
  partition_aware : bool;
  comm_cost_per_row : float;
}

let default_config =
  { params = Cost.Cost_model.default_params;
    processors = 8;
    partition_aware = true;
    comm_cost_per_row = 0.002 }

let cols_equal (a : Expr.col_ref list) (b : Expr.col_ref list) =
  List.length a = List.length b && List.for_all2 (fun x y -> x = y) a b

let compatible have want =
  match have, want with
  | On h, On w -> cols_equal h w
  | (Any | On _), _ -> false

(* ------------------------------------------------------------------ *)
(* Segment extraction *)

type builder = {
  mutable segs : segment list;
  mutable next : int;
  (* plan node -> id of the segment it executes in (physical identity) *)
  mutable assign : (Exec.Plan.t * int) list;
  cfg : config;
  cat : Storage.Catalog.t;
  db : Stats.Table_stats.db;
}

let new_seg b ~ops ~work ~max_dop ~comm_rows ~deps ~produces =
  let s = { id = b.next; ops; work; max_dop; comm_rows; deps; produces } in
  b.next <- b.next + 1;
  b.segs <- b.segs @ [ s ];
  s

(* The pipelined segment currently being assembled bottom-up. *)
type open_seg = {
  o_ops : string list;
  o_work : float;
  o_dop : float;
  o_deps : int list;
  o_comm : float; (* rows repartitioned within this open segment *)
  o_part : partitioning;
  o_nodes : Exec.Plan.t list; (* plan nodes executing in this segment *)
}

let close b (o : open_seg) : segment =
  let s =
    new_seg b ~ops:o.o_ops ~work:o.o_work ~max_dop:o.o_dop ~comm_rows:o.o_comm
      ~deps:o.o_deps ~produces:o.o_part
  in
  List.iter (fun n -> b.assign <- (n, s.id) :: b.assign) o.o_nodes;
  s

let rec walk (b : builder) (p : Exec.Plan.t) : open_seg =
  let work_of q = (fst (Plan_stats.derive b.cfg.params b.cat b.db q)).Plan_stats.work in
  let rows_of q = (fst (Plan_stats.derive b.cfg.params b.cat b.db q)).Plan_stats.rows in
  let node_work children = work_of p -. List.fold_left (fun a c -> a +. work_of c) 0. children in
  let unary name i =
    let o = walk b i in
    { o with o_ops = o.o_ops @ [ name ]; o_work = o.o_work +. node_work [ i ];
      o_nodes = o.o_nodes @ [ p ] }
  in
  match p with
  | Exec.Plan.Seq_scan { table; _ } | Exec.Plan.Index_scan { table; _ } ->
    let pages =
      float_of_int (Storage.Table.page_count (Storage.Catalog.table b.cat table))
    in
    { o_ops = [ "scan " ^ table ]; o_work = work_of p;
      o_dop = Float.max 1. pages; o_deps = []; o_comm = 0.; o_part = Any;
      o_nodes = [ p ] }
  | Exec.Plan.Filter (_, i) -> unary "filter" i
  | Exec.Plan.Project (_, i) -> unary "project" i
  | Exec.Plan.Hash_distinct i -> unary "distinct" i
  | Exec.Plan.Sort (_, i) | Exec.Plan.Materialize i ->
    (* blocking: close the child's pipeline *)
    let closed = close b (walk b i) in
    let name = match p with Exec.Plan.Sort _ -> "sort" | _ -> "materialize" in
    { o_ops = [ name ]; o_work = node_work [ i ];
      o_dop = closed.max_dop; o_deps = [ closed.id ]; o_comm = 0.;
      o_part = closed.produces; o_nodes = [ p ] }
  | Exec.Plan.Hash_agg { input; keys; _ } | Exec.Plan.Stream_agg { input; keys; _ }
    ->
    let closed = close b (walk b input) in
    let part =
      On
        (List.filter_map
           (fun (ke, _) -> match ke with Expr.Col c -> Some c | _ -> None)
           keys)
    in
    { o_ops = [ "aggregate" ]; o_work = node_work [ input ];
      o_dop = closed.max_dop; o_deps = [ closed.id ]; o_comm = 0.;
      o_part = part; o_nodes = [ p ] }
  | Exec.Plan.Nested_loop { outer; inner; _ } ->
    let o = walk b outer in
    let inner_seg = close b (walk b inner) in
    { o_ops = o.o_ops @ [ "nested-loop join" ];
      o_work = o.o_work +. node_work [ outer; inner ];
      o_dop = o.o_dop;
      o_deps = o.o_deps @ [ inner_seg.id ];
      o_comm = o.o_comm;
      o_part = o.o_part;
      o_nodes = o.o_nodes @ [ p ] }
  | Exec.Plan.Index_nl { outer; _ } ->
    let o = walk b outer in
    { o with
      o_ops = o.o_ops @ [ "index-nl join" ];
      o_work = o.o_work +. node_work [ outer ];
      o_nodes = o.o_nodes @ [ p ] }
  | Exec.Plan.Merge_join { pairs; left; right; _ }
  | Exec.Plan.Hash_join { pairs; left; right; _ } ->
    let want_l = On (List.map fst pairs) and want_r = On (List.map snd pairs) in
    let lo = walk b left and ro = walk b right in
    let comm_of have want rows =
      if b.cfg.partition_aware && compatible have want then 0. else rows
    in
    (* build/right side blocks; probe/left side pipelines into the join *)
    let right_seg =
      close b
        { ro with
          o_ops = ro.o_ops @ [ "build" ];
          o_comm = ro.o_comm +. comm_of ro.o_part want_r (rows_of right);
          o_part = want_r }
    in
    let name =
      match p with Exec.Plan.Merge_join _ -> "merge join" | _ -> "hash join"
    in
    { o_ops = lo.o_ops @ [ name ];
      o_work = lo.o_work +. node_work [ left; right ];
      o_dop = Float.max lo.o_dop 1.;
      o_deps = lo.o_deps @ [ right_seg.id ];
      o_comm = lo.o_comm +. comm_of lo.o_part want_l (rows_of left);
      o_part = want_l;
      o_nodes = lo.o_nodes @ [ p ] }

let decompose_assign (cfg : config) cat db (plan : Exec.Plan.t) :
  segment list * (Exec.Plan.t * int) list =
  let b = { segs = []; next = 0; assign = []; cfg; cat; db } in
  let top = walk b plan in
  ignore (close b top);
  (b.segs, b.assign)

let decompose (cfg : config) cat db (plan : Exec.Plan.t) : segment list =
  fst (decompose_assign cfg cat db plan)

(* The degree of parallelism each plan node actually runs at: its
   segment's cap, clamped to the processor budget — the same dop the
   wave scheduler charges that segment with.  Nodes the decomposition
   does not reach (none today) default to the full budget. *)
let node_dop (cfg : config) cat db (plan : Exec.Plan.t) :
  Exec.Plan.t -> int =
  let segs, assign = decompose_assign cfg cat db plan in
  let budget = max 1 cfg.processors in
  let seg_dop =
    List.map
      (fun s ->
         (s.id, min budget (max 1 (int_of_float (Float.ceil s.max_dop)))))
      segs
  in
  fun node ->
    let rec go = function
      | [] -> budget
      | (n, sid) :: rest ->
        if n == node then
          match List.assoc_opt sid seg_dop with
          | Some d -> d
          | None -> budget
        else go rest
    in
    go assign

(* ------------------------------------------------------------------ *)
(* Phase-2 scheduling: topological waves of malleable tasks *)

let schedule_segments (cfg : config) (segs : segment list) : schedule =
  let p = float_of_int (max 1 cfg.processors) in
  let total_work = List.fold_left (fun a s -> a +. s.work) 0. segs in
  let comm_rate = cfg.comm_cost_per_row in
  let comm_cost =
    List.fold_left (fun a s -> a +. (s.comm_rows *. comm_rate)) 0. segs
  in
  let done_ = Hashtbl.create 16 in
  let remaining = ref segs in
  let t = ref 0. in
  while !remaining <> [] do
    let ready, blocked =
      List.partition
        (fun s -> List.for_all (Hashtbl.mem done_) s.deps)
        !remaining
    in
    if ready = [] then begin
      (* cannot happen: segments form a DAG by construction *)
      List.iter (fun s -> Hashtbl.replace done_ s.id ()) blocked;
      remaining := []
    end
    else begin
      (* malleable-task wave: time = max(total/p, longest segment at its
         own parallelism cap) *)
      let seg_comm s = s.comm_rows *. comm_rate in
      let wave_work =
        List.fold_left (fun a s -> a +. s.work +. seg_comm s) 0. ready
      in
      let longest =
        List.fold_left
          (fun a s ->
             Float.max a
               (((s.work +. seg_comm s)
                 /. Float.min p (Float.max 1. s.max_dop))))
          0. ready
      in
      t := !t +. Float.max (wave_work /. p) longest;
      List.iter (fun s -> Hashtbl.replace done_ s.id ()) ready;
      remaining := blocked
    end
  done;
  { segments = segs; response_time = !t; total_work; comm_cost }

let run ?(config = default_config) cat db (plan : Exec.Plan.t) : schedule =
  schedule_segments config (decompose config cat db plan)

let pp_schedule ppf (s : schedule) =
  Fmt.pf ppf "@[<v>%d segments, work %.1f, comm %.1f, response %.2f@,%a@]"
    (List.length s.segments) s.total_work s.comm_cost s.response_time
    Fmt.(list ~sep:cut (fun ppf seg ->
        Fmt.pf ppf "  seg%d [%s] work=%.1f dop<=%.0f deps=%a comm=%.0f"
          seg.id (String.concat " -> " seg.ops) seg.work seg.max_dop
          Fmt.(list ~sep:(any ",") int) seg.deps seg.comm_rows))
    s.segments
