(** Replayable repro files.

    A repro is a self-contained, human-editable text file holding one
    failing (or regression) case: the database spec and the query as SQL
    text, plus provenance (seed, failing oracle, free-form notes).  The
    corpus under [fuzz/corpus/] is made of these; [dune runtest] replays
    every one through the full oracle grid forever.

    Format (line-based):
    {v
    # free-form note lines
    seed 42
    oracle multiset
    table t1
    col id int
    col k int
    index clustered id
    index secondary k g
    row 0 1
    row 1 NULL
    end
    query SELECT r1.id FROM t1 AS r1 WHERE r1.k = 0
    v}

    Row values: [NULL], integers, floats, ['str'] (quote doubled to
    escape, no newlines), [TRUE]/[FALSE]; parsed against the declared
    column type. *)

type t = {
  notes : string list;
  seed : int option;
  oracle : string option;
  spec : Dbspec.t;
  sql : string;
}

val of_case :
  ?seed:int -> ?oracle:string -> ?notes:string list -> Dbspec.t ->
  Sql.Ast.query -> t

val to_string : t -> string

(** @raise Failure on malformed input. *)
val of_string : string -> t

val save : string -> t -> unit

(** @raise Failure / [Sys_error] on malformed or unreadable files. *)
val load : string -> t

(** Re-run the case through the oracle stack ([None] = passes). *)
val replay : ?grid:Oracle.cfg list -> t -> Oracle.failure option
