(* Fuzzing campaign driver. *)

type failure_case = {
  seed : int;
  failure : Oracle.failure;
  spec : Dbspec.t;
  query : Sql.Ast.query;
  repro : Repro.t;
}

let run_seed ?grid ?shrink_budget seed =
  let spec, q = Gen.case ~seed in
  match Oracle.check ?grid spec q with
  | None -> None
  | Some original ->
    let spec', q' = Shrink.shrink ?grid ?budget:shrink_budget spec q in
    (* the shrunk case may fail a different (earlier-firing) oracle;
       label the repro with what it fails NOW *)
    let failure =
      match Oracle.check ?grid spec' q' with
      | Some f -> f
      | None -> original (* shouldn't happen: shrink accepts failing cases only *)
    in
    let notes =
      [ Printf.sprintf "seed %d, %s" seed
          (Fmt.str "%a" Oracle.pp_failure failure);
        Printf.sprintf "originally: %s" (Fmt.str "%a" Oracle.pp_failure original) ]
    in
    Some
      { seed; failure; spec = spec'; query = q';
        repro = Repro.of_case ~seed ~oracle:failure.Oracle.oracle ~notes spec' q' }

let run_range ?grid ?shrink_budget ?(max_failures = 10)
    ?(on_case = fun ~seed:_ _ -> ()) ~seed count =
  let failures = ref [] in
  (try
     for s = seed to seed + count - 1 do
       (match run_seed ?grid ?shrink_budget s with
        | None -> on_case ~seed:s None
        | Some fc ->
          failures := fc :: !failures;
          on_case ~seed:s (Some fc.failure));
       if List.length !failures >= max_failures then raise Exit
     done
   with Exit -> ());
  List.rev !failures

let save_failures ~dir cases =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.map
    (fun fc ->
       let path =
         Filename.concat dir
           (Printf.sprintf "seed%d_%s.repro" fc.seed fc.failure.Oracle.oracle)
       in
       Repro.save path fc.repro;
       path)
    cases
