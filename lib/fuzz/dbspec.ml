(* Value-level database specifications for the differential fuzzer. *)

open Relalg

type index = { icols : string list; iclustered : bool }

type table = {
  tname : string;
  cols : (string * Value.ty) list;
  rows : Value.t array array;
  indexes : index list;
}

type t = { tables : table list }

let table_named spec n = List.find_opt (fun t -> t.tname = n) spec.tables

let total_rows spec =
  List.fold_left (fun acc t -> acc + Array.length t.rows) 0 spec.tables

let build (spec : t) : Storage.Catalog.t * Stats.Table_stats.db =
  let cat = Storage.Catalog.create () in
  List.iter
    (fun tb ->
       let t = Storage.Catalog.create_table cat ~name:tb.tname ~columns:tb.cols in
       Array.iter (fun r -> Storage.Table.insert t (Array.copy r)) tb.rows;
       List.iter
         (fun ix ->
            ignore
              (Storage.Catalog.create_index cat ~clustered:ix.iclustered
                 ~table:tb.tname ~columns:ix.icols ()))
         tb.indexes)
    spec.tables;
  (cat, Stats.Table_stats.analyze_catalog cat)

let equal (a : t) (b : t) = a = b

let pp ppf (spec : t) =
  Fmt.pf ppf "@[<v>";
  List.iteri
    (fun i tb ->
       if i > 0 then Fmt.cut ppf ();
       Fmt.pf ppf "%s(%a) %d rows%a" tb.tname
         Fmt.(list ~sep:(any ", ")
                (fun ppf (n, ty) -> Fmt.pf ppf "%s:%s" n (Value.ty_name ty)))
         tb.cols
         (Array.length tb.rows)
         Fmt.(list ~sep:nop
                (fun ppf ix ->
                   Fmt.pf ppf " [%s%s]"
                     (if ix.iclustered then "clustered " else "")
                     (String.concat "," ix.icols)))
         tb.indexes)
    spec.tables;
  Fmt.pf ppf "@]"

let to_string spec = Fmt.str "%a" pp spec
