(** Seeded random workload generation: schemas, data and queries.

    Everything is a pure function of one integer seed — each table and the
    query draw from independent streams derived with {!Workload.Gen.derive},
    so a case replays from a single CLI-supplied integer (never from
    wall-clock).  Schemas are random (column presence, domains, skew, NULL
    fractions, row counts including empty tables, index sets); queries
    cover select/project/join (acyclic, cyclic and deliberately
    disconnected join graphs, self-joins), derived tables, LEFT OUTER
    JOIN, IN / EXISTS / NOT EXISTS / scalar-aggregate subqueries (correlated
    and not), GROUP BY / HAVING, DISTINCT, ORDER BY and UNION [ALL] —
    emitted as SQL ASTs so the printer, lexer, parser and binder all sit
    inside the differential loop. *)

(** Random database spec for [seed]. *)
val db : seed:int -> Dbspec.t

(** Random query over [spec] for [seed]. *)
val query : seed:int -> Dbspec.t -> Sql.Ast.query

(** Database and query for one seed ([db] + [query] on derived streams). *)
val case : seed:int -> Dbspec.t * Sql.Ast.query

(** Relation aliases referenced by the query's FROM clauses (all blocks,
    subqueries included) — the "repro size" the shrinker minimizes. *)
val relation_count : Sql.Ast.query -> int
