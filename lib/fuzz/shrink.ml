(* Greedy shrinking of failing fuzz cases.

   A move proposes candidate simplifications of the current case; a
   candidate is accepted when it still binds (validity gate — the oracle
   reports bind failures as findings, which would otherwise let the
   shrinker "minimize" into garbage) and some oracle still fails.  Moves
   are ordered big-wins-first and retried to a fixpoint. *)

module A = Sql.Ast

type case = Dbspec.t * A.query

(* ------------------------------------------------------------------ *)
(* AST helpers *)

let conjuncts e =
  let rec go acc = function
    | A.And (a, b) -> go (go acc a) b
    | e -> e :: acc
  in
  List.rev (go [] e)

let and_all = function
  | [] -> None
  | cs ->
    let rec nest = function
      | [ c ] -> c
      | c :: rest -> A.And (c, nest rest)
      | [] -> assert false
    in
    Some (nest cs)

let rec expr_mentions alias = function
  | A.Column (Some a, _) -> a = alias
  | A.Column (None, _) | A.Lit_int _ | A.Lit_float _ | A.Lit_string _
  | A.Lit_bool _ | A.Lit_null -> false
  | A.Binop (_, a, b) | A.Cmp (_, a, b) | A.And (a, b) | A.Or (a, b) ->
    expr_mentions alias a || expr_mentions alias b
  | A.Not a | A.Is_null (a, _) -> expr_mentions alias a
  | A.Agg (_, arg) -> (
    match arg with Some a -> expr_mentions alias a | None -> false)
  | A.In_query (e, s) -> expr_mentions alias e || select_mentions alias s
  | A.Cmp_query (_, e, s) -> expr_mentions alias e || select_mentions alias s
  | A.Exists (_, s) -> select_mentions alias s

and select_mentions alias (s : A.select) =
  (* only free mentions matter; the generator's aliases are unique
     query-wide, so no inner FROM re-introduces [alias] *)
  List.exists
    (function
      | A.Star -> false
      | A.Item (e, _) -> expr_mentions alias e)
    s.A.items
  || (match s.A.where with Some e -> expr_mentions alias e | None -> false)
  || List.exists (expr_mentions alias) s.A.group_by
  || (match s.A.having with Some e -> expr_mentions alias e | None -> false)
  || List.exists (fun (e, _) -> expr_mentions alias e) s.A.order_by
  || List.exists
       (function
         | A.Plain (A.Subquery (inner, _)) -> select_mentions alias inner
         | A.Plain (A.Table _) -> false
         | A.Left_outer_join (_, A.Subquery (inner, _), on) ->
           select_mentions alias inner || expr_mentions alias on
         | A.Left_outer_join (_, _, on) -> expr_mentions alias on)
       s.A.from

let item_alias = function
  | A.Table (_, Some a) -> a
  | A.Table (n, None) -> n
  | A.Subquery (_, a) -> a

let rec joined_aliases = function
  | A.Plain it -> [ item_alias it ]
  | A.Left_outer_join (l, it, _) -> joined_aliases l @ [ item_alias it ]

let from_aliases from = List.concat_map joined_aliases from

(* Remove relation [alias] from a FROM list.  Returns None when the
   relation is not removable in place (e.g. the left anchor of an outer
   join with no other shape we handle). *)
let remove_alias_from (from : A.joined list) alias : A.joined list option =
  let rec drop_in_joined j =
    match j with
    | A.Plain it -> if item_alias it = alias then Some `Gone else None
    | A.Left_outer_join (l, it, _) ->
      if item_alias it = alias then Some (`Replace l)
      else (
        match drop_in_joined l with
        | Some `Gone -> Some (`Replace (A.Plain it))
        | Some (`Replace l') -> Some (`Replace (A.Left_outer_join (l', it, (match j with A.Left_outer_join (_, _, on) -> on | _ -> assert false))))
        | None -> None)
  in
  let rec go = function
    | [] -> None
    | j :: rest -> (
      match drop_in_joined j with
      | Some `Gone -> Some rest
      | Some (`Replace j') -> Some (j' :: rest)
      | None -> Option.map (fun r -> j :: r) (go rest))
  in
  go from

(* Scrub all traces of [alias] from the clauses of a select. *)
let scrub_select alias (s : A.select) from' : A.select option =
  if from' = [] then None
  else begin
    let keep e = not (expr_mentions alias e) in
    let items =
      List.filter
        (function A.Star -> true | A.Item (e, _) -> keep e)
        s.A.items
    in
    let group_by = List.filter keep s.A.group_by in
    let items =
      if items <> [] then items
      else if group_by <> [] then [ A.Item (A.Agg (A.Fn_count, None), Some "x_shrink") ]
      else [ A.Item (A.Lit_int 1, Some "x_shrink") ]
    in
    let where =
      match s.A.where with
      | None -> None
      | Some w -> and_all (List.filter keep (conjuncts w))
    in
    let having =
      match s.A.having with
      | None -> None
      | Some h -> and_all (List.filter keep (conjuncts h))
    in
    let order_by = List.filter (fun (e, _) -> keep e) s.A.order_by in
    Some { s with A.items; from = from'; where; group_by; having; order_by }
  end

(* ------------------------------------------------------------------ *)
(* Query-level moves.  Each yields a candidate list, best-first. *)

let map_single f = function
  | A.Single s -> List.map (fun s' -> A.Single s') (f s)
  | A.Union _ -> []

let union_arms = function
  | A.Union (l, _, r) -> [ l; r ]
  | A.Single _ -> []

let drop_relation (s : A.select) =
  List.filter_map
    (fun alias ->
       match remove_alias_from s.A.from alias with
       | None -> None
       | Some from' -> scrub_select alias s from')
    (from_aliases s.A.from)

let drop_where_conjunct (s : A.select) =
  match s.A.where with
  | None -> []
  | Some w ->
    let cs = conjuncts w in
    List.mapi
      (fun i _ ->
         { s with A.where = and_all (List.filteri (fun j _ -> j <> i) cs) })
      cs

(* Structural simplification of one WHERE conjunct: unwrap NOT, pick an OR
   arm, shrink a subquery's own WHERE. *)
let simplify_conjunct (s : A.select) =
  match s.A.where with
  | None -> []
  | Some w ->
    let cs = conjuncts w in
    let subst i e' =
      { s with
        A.where = and_all (List.mapi (fun j c -> if j = i then e' else c) cs) }
    in
    List.concat
      (List.mapi
         (fun i c ->
            let sub_shrunk mk inner =
              match inner.A.where with
              | None -> []
              | Some iw ->
                let ics = conjuncts iw in
                List.mapi
                  (fun j _ ->
                     subst i
                       (mk
                          { inner with
                            A.where =
                              and_all (List.filteri (fun k _ -> k <> j) ics) }))
                  ics
            in
            match c with
            | A.Not e -> [ subst i e ]
            | A.Or (a, b) -> [ subst i a; subst i b ]
            | A.Exists (flag, inner) ->
              sub_shrunk (fun inner' -> A.Exists (flag, inner')) inner
            | A.In_query (e, inner) ->
              sub_shrunk (fun inner' -> A.In_query (e, inner')) inner
            | A.Cmp_query (op, e, inner) ->
              sub_shrunk (fun inner' -> A.Cmp_query (op, e, inner')) inner
            | _ -> [])
         cs)

let drop_select_item (s : A.select) =
  if List.length s.A.items < 2 then []
  else
    List.mapi
      (fun i _ ->
         { s with A.items = List.filteri (fun j _ -> j <> i) s.A.items })
      s.A.items

let drop_group_key (s : A.select) =
  if List.length s.A.group_by < 1 then []
  else
    List.mapi
      (fun i k ->
         { s with
           A.group_by = List.filteri (fun j _ -> j <> i) s.A.group_by;
           items =
             List.filter
               (function A.Item (e, _) when e = k -> false | _ -> true)
               s.A.items })
      s.A.group_by

let drop_clauses (s : A.select) =
  (if s.A.having <> None then [ { s with A.having = None } ] else [])
  @ (if s.A.order_by <> [] then [ { s with A.order_by = [] } ] else [])
  @ if s.A.distinct then [ { s with A.distinct = false } ] else []

(* Derived table → its base table, keeping the outer alias. *)
let derived_to_base (s : A.select) =
  let rec subst_joined j =
    match j with
    | A.Plain (A.Subquery (inner, a)) -> (
      match inner.A.from with
      | [ A.Plain (A.Table (n, _)) ] -> [ A.Plain (A.Table (n, Some a)) ]
      | _ -> [])
    | A.Plain (A.Table _) -> []
    | A.Left_outer_join (l, it, on) ->
      (match it with
       | A.Subquery (inner, a) -> (
         match inner.A.from with
         | [ A.Plain (A.Table (n, _)) ] ->
           [ A.Left_outer_join (l, A.Table (n, Some a), on) ]
         | _ -> [])
       | A.Table _ -> [])
      @ List.map (fun l' -> A.Left_outer_join (l', it, on)) (subst_joined l)
  in
  List.concat
    (List.mapi
       (fun i j ->
          List.map
            (fun j' ->
               { s with
                 A.from = List.mapi (fun k x -> if k = i then j' else x) s.A.from })
            (subst_joined j))
       s.A.from)

(* ------------------------------------------------------------------ *)
(* Database moves *)

let rec query_mentions_table (q : A.query) n =
  match q with
  | A.Single s -> select_mentions_table s n
  | A.Union (l, _, r) -> query_mentions_table l n || query_mentions_table r n

and select_mentions_table (s : A.select) n =
  List.exists
    (fun j ->
       List.exists
         (fun it ->
            match it with
            | A.Table (tn, _) -> tn = n
            | A.Subquery (inner, _) -> select_mentions_table inner n)
         (let rec items = function
            | A.Plain it -> [ it ]
            | A.Left_outer_join (l, it, _) -> items l @ [ it ]
          in
          items j))
    s.A.from
  || select_mentions_sub s n

and select_mentions_sub (s : A.select) n =
  let rec in_expr = function
    | A.In_query (_, inner) | A.Cmp_query (_, _, inner) | A.Exists (_, inner)
      -> select_mentions_table inner n
    | A.Binop (_, a, b) | A.Cmp (_, a, b) | A.And (a, b) | A.Or (a, b) ->
      in_expr a || in_expr b
    | A.Not a | A.Is_null (a, _) -> in_expr a
    | A.Agg (_, Some a) -> in_expr a
    | _ -> false
  in
  List.exists
    (function A.Star -> false | A.Item (e, _) -> in_expr e)
    s.A.items
  || (match s.A.where with Some e -> in_expr e | None -> false)
  || (match s.A.having with Some e -> in_expr e | None -> false)

let rec query_has_star = function
  | A.Single s ->
    List.exists (function A.Star -> true | A.Item _ -> false) s.A.items
    || List.exists
         (fun j ->
            let rec items = function
              | A.Plain it -> [ it ]
              | A.Left_outer_join (l, it, _) -> items l @ [ it ]
            in
            List.exists
              (function
                | A.Subquery (inner, _) -> query_has_star (A.Single inner)
                | A.Table _ -> false)
              (items j))
         s.A.from
    || (let rec in_expr = function
          | A.In_query (_, inner) | A.Cmp_query (_, _, inner)
          | A.Exists (_, inner) -> query_has_star (A.Single inner)
          | A.Binop (_, a, b) | A.Cmp (_, a, b) | A.And (a, b) | A.Or (a, b)
            -> in_expr a || in_expr b
          | A.Not a | A.Is_null (a, _) -> in_expr a
          | A.Agg (_, Some a) -> in_expr a
          | _ -> false
        in
        (match s.A.where with Some e -> in_expr e | None -> false)
        || (match s.A.having with Some e -> in_expr e | None -> false))
  | A.Union (l, _, r) -> query_has_star l || query_has_star r

let rec query_column_names = function
  | A.Single s ->
    let rec of_expr = function
      | A.Column (_, n) -> [ n ]
      | A.Binop (_, a, b) | A.Cmp (_, a, b) | A.And (a, b) | A.Or (a, b) ->
        of_expr a @ of_expr b
      | A.Not a | A.Is_null (a, _) -> of_expr a
      | A.Agg (_, Some a) -> of_expr a
      | A.In_query (e, inner) | A.Cmp_query (_, e, inner) ->
        of_expr e @ query_column_names (A.Single inner)
      | A.Exists (_, inner) -> query_column_names (A.Single inner)
      | _ -> []
    in
    List.concat_map
      (function A.Star -> [] | A.Item (e, _) -> of_expr e)
      s.A.items
    @ (match s.A.where with Some e -> of_expr e | None -> [])
    @ List.concat_map of_expr s.A.group_by
    @ (match s.A.having with Some e -> of_expr e | None -> [])
    @ List.concat_map (fun (e, _) -> of_expr e) s.A.order_by
    @ List.concat_map
        (fun j ->
           let rec go = function
             | A.Plain it -> item_cols it
             | A.Left_outer_join (l, it, on) -> go l @ item_cols it @ of_expr on
           and item_cols = function
             | A.Subquery (inner, _) -> query_column_names (A.Single inner)
             | A.Table _ -> []
           in
           go j)
        s.A.from
  | A.Union (l, _, r) -> query_column_names l @ query_column_names r

let table_moves (spec : Dbspec.t) (q : A.query) : Dbspec.t list =
  let replace_tb tb' =
    { Dbspec.tables =
        List.map
          (fun t -> if t.Dbspec.tname = tb'.Dbspec.tname then tb' else t)
          spec.Dbspec.tables }
  in
  (* drop unreferenced tables *)
  (match
     List.filter
       (fun t -> not (query_mentions_table q t.Dbspec.tname))
       spec.Dbspec.tables
   with
   | [] -> []
   | unref ->
     [ { Dbspec.tables =
           List.filter
             (fun t ->
                not
                  (List.exists
                     (fun u -> u.Dbspec.tname = t.Dbspec.tname)
                     unref))
             spec.Dbspec.tables } ])
  (* halve rows (keep the prefix) *)
  @ List.filter_map
      (fun tb ->
         let n = Array.length tb.Dbspec.rows in
         if n > 8 then
           Some (replace_tb { tb with Dbspec.rows = Array.sub tb.Dbspec.rows 0 (n / 2) })
         else None)
      spec.Dbspec.tables
  (* one row at a time when small *)
  @ List.concat_map
      (fun tb ->
         let n = Array.length tb.Dbspec.rows in
         if n >= 1 && n <= 8 then
           List.init n (fun i ->
               replace_tb
                 { tb with
                   Dbspec.rows =
                     Array.of_list
                       (List.filteri (fun j _ -> j <> i)
                          (Array.to_list tb.Dbspec.rows)) })
         else [])
      spec.Dbspec.tables
  (* drop unreferenced columns (never under a Star) *)
  @ (if query_has_star q then []
     else
       let used = query_column_names q in
       List.filter_map
         (fun tb ->
            let dead =
              List.filteri
                (fun _ (n, _) -> not (List.mem n used))
                tb.Dbspec.cols
            in
            if dead = [] || List.length dead = List.length tb.Dbspec.cols
            then None
            else begin
              let keep = List.map (fun (n, _) -> not (List.mem_assoc n dead)) tb.Dbspec.cols in
              let filter_row r =
                Array.of_list
                  (List.filteri (fun i _ -> List.nth keep i)
                     (Array.to_list r))
              in
              Some
                (replace_tb
                   { tb with
                     Dbspec.cols =
                       List.filteri (fun i _ -> List.nth keep i) tb.Dbspec.cols;
                     rows = Array.map filter_row tb.Dbspec.rows;
                     indexes =
                       List.filter
                         (fun ix ->
                            List.for_all
                              (fun c -> List.mem c used)
                              ix.Dbspec.icols)
                         tb.Dbspec.indexes })
            end)
         spec.Dbspec.tables)
  (* drop all indexes of a table *)
  @ List.filter_map
      (fun tb ->
         if tb.Dbspec.indexes <> [] then
           Some (replace_tb { tb with Dbspec.indexes = [] })
         else None)
      spec.Dbspec.tables

(* ------------------------------------------------------------------ *)
(* The greedy loop *)

let shrink ?grid ?(budget = 400) spec ast : case =
  let tries = ref 0 in
  let still_fails (s, a) =
    !tries < budget
    && begin
      incr tries;
      Oracle.binds s a && Oracle.check ?grid s a <> None
    end
  in
  let query_moves (q : A.query) : A.query list =
    union_arms q
    @ map_single drop_relation q
    @ map_single drop_where_conjunct q
    @ map_single simplify_conjunct q
    @ map_single drop_select_item q
    @ map_single drop_group_key q
    @ map_single drop_clauses q
    @ map_single derived_to_base q
  in
  let candidates (s, q) =
    List.map (fun q' -> (s, q')) (query_moves q)
    @ List.map (fun s' -> (s', q)) (table_moves s q)
  in
  let rec loop case =
    if !tries >= budget then case
    else
      match List.find_opt still_fails (candidates case) with
      | Some case' -> loop case'
      | None -> case
  in
  loop (spec, ast)
