(* Replayable repro files: serialize a (spec, query) case to a line-based
   text format and back.  See the .mli for the grammar. *)

open Relalg

type t = {
  notes : string list;
  seed : int option;
  oracle : string option;
  spec : Dbspec.t;
  sql : string;
}

let of_case ?seed ?oracle ?(notes = []) spec ast =
  { notes; seed; oracle; spec; sql = Sql.Printer.query_to_string ast }

(* ------------------------------------------------------------------ *)
(* Writing *)

let ty_token = function
  | Value.Tint -> "int"
  | Value.Tfloat -> "float"
  | Value.Tstring -> "string"
  | Value.Tbool -> "bool"

let value_token = function
  | Value.Null -> "NULL"
  | Value.Int i -> string_of_int i
  | Value.Float f ->
    let s = Printf.sprintf "%.17g" f in
    if String.contains s '.' || String.contains s 'e'
       || String.contains s 'n' (* nan, inf *)
    then s
    else s ^ ".0"
  | Value.Bool b -> if b then "TRUE" else "FALSE"
  | Value.Str s ->
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '\'';
    String.iter
      (fun c ->
         if c = '\'' then Buffer.add_string buf "''"
         else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '\'';
    Buffer.contents buf

let to_string r =
  let buf = Buffer.create 1024 in
  List.iter (fun n -> Buffer.add_string buf ("# " ^ n ^ "\n")) r.notes;
  Option.iter (fun s -> Buffer.add_string buf (Printf.sprintf "seed %d\n" s)) r.seed;
  Option.iter (fun o -> Buffer.add_string buf ("oracle " ^ o ^ "\n")) r.oracle;
  List.iter
    (fun tb ->
       Buffer.add_string buf ("table " ^ tb.Dbspec.tname ^ "\n");
       List.iter
         (fun (n, ty) ->
            Buffer.add_string buf (Printf.sprintf "col %s %s\n" n (ty_token ty)))
         tb.Dbspec.cols;
       List.iter
         (fun ix ->
            Buffer.add_string buf
              (Printf.sprintf "index %s %s\n"
                 (if ix.Dbspec.iclustered then "clustered" else "secondary")
                 (String.concat " " ix.Dbspec.icols)))
         tb.Dbspec.indexes;
       Array.iter
         (fun row ->
            Buffer.add_string buf
              ("row "
               ^ String.concat " "
                   (List.map value_token (Array.to_list row))
               ^ "\n"))
         tb.Dbspec.rows;
       Buffer.add_string buf "end\n")
    r.spec.Dbspec.tables;
  Buffer.add_string buf ("query " ^ r.sql ^ "\n");
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Reading *)

let fail fmt = Printf.ksprintf failwith fmt

(* Split a row payload into tokens; single-quoted strings may contain
   spaces and doubled quotes. *)
let tokenize line =
  let n = String.length line in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    if line.[!i] = ' ' then incr i
    else if line.[!i] = '\'' then begin
      let buf = Buffer.create 8 in
      incr i;
      let fin = ref false in
      while not !fin do
        if !i >= n then fail "unterminated string in row: %s" line
        else if line.[!i] = '\'' then
          if !i + 1 < n && line.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            incr i;
            fin := true
          end
        else begin
          Buffer.add_char buf line.[!i];
          incr i
        end
      done;
      toks := `Str (Buffer.contents buf) :: !toks
    end
    else begin
      let j = try String.index_from line !i ' ' with Not_found -> n in
      toks := `Tok (String.sub line !i (j - !i)) :: !toks;
      i := j
    end
  done;
  List.rev !toks

let parse_value ty tok =
  match (tok, ty) with
  | `Tok "NULL", _ -> Value.Null
  | `Str s, Value.Tstring -> Value.Str s
  | `Tok "TRUE", Value.Tbool -> Value.Bool true
  | `Tok "FALSE", Value.Tbool -> Value.Bool false
  | `Tok t, Value.Tint -> (
    match int_of_string_opt t with
    | Some i -> Value.Int i
    | None -> fail "bad int value %S" t)
  | `Tok t, Value.Tfloat -> (
    match float_of_string_opt t with
    | Some f -> Value.Float f
    | None -> fail "bad float value %S" t)
  | `Tok t, _ -> fail "value %S does not match the declared column type" t
  | `Str s, _ -> fail "string %S in a non-string column" s

let parse_ty = function
  | "int" -> Value.Tint
  | "float" -> Value.Tfloat
  | "string" -> Value.Tstring
  | "bool" -> Value.Tbool
  | t -> fail "unknown column type %S" t

let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let notes = ref [] in
  let seed = ref None in
  let oracle = ref None in
  let tables = ref [] in
  let sql = ref None in
  (* current table under construction *)
  let cur = ref None in
  let flush () =
    match !cur with
    | None -> fail "'end' without a 'table'"
    | Some (name, cols, ixs, rows) ->
      tables :=
        { Dbspec.tname = name; cols = List.rev cols;
          indexes = List.rev ixs;
          rows = Array.of_list (List.rev rows) }
        :: !tables;
      cur := None
  in
  List.iter
    (fun line ->
       let word, rest =
         match String.index_opt line ' ' with
         | Some i ->
           ( String.sub line 0 i,
             String.trim
               (String.sub line (i + 1) (String.length line - i - 1)) )
         | None -> (line, "")
       in
       match (word, !cur) with
       | "#", _ -> notes := rest :: !notes
       | "seed", _ -> seed := int_of_string_opt rest
       | "oracle", _ -> oracle := Some rest
       | "table", None -> cur := Some (rest, [], [], [])
       | "table", Some _ -> fail "'table' before previous table's 'end'"
       | "end", _ -> flush ()
       | "col", Some (n, cols, ixs, rows) -> (
         match String.split_on_char ' ' rest with
         | [ cn; ty ] -> cur := Some (n, (cn, parse_ty ty) :: cols, ixs, rows)
         | _ -> fail "bad col line: %s" line)
       | "index", Some (n, cols, ixs, rows) -> (
         match String.split_on_char ' ' rest with
         | kind :: (_ :: _ as icols) ->
           let iclustered =
             match kind with
             | "clustered" -> true
             | "secondary" -> false
             | k -> fail "unknown index kind %S" k
           in
           cur := Some (n, cols, { Dbspec.icols; iclustered } :: ixs, rows)
         | _ -> fail "bad index line: %s" line)
       | "row", Some (n, cols, ixs, rows) ->
         let tys = List.rev_map snd cols in
         let toks = tokenize rest in
         if List.length toks <> List.length tys then
           fail "row arity %d does not match %d declared columns"
             (List.length toks) (List.length tys);
         let row = Array.of_list (List.map2 parse_value tys toks) in
         cur := Some (n, cols, ixs, row :: rows)
       | "query", None -> sql := Some rest
       | "query", Some _ -> fail "'query' inside a table block"
       | w, _ -> fail "unknown directive %S" w)
    lines;
  if !cur <> None then fail "missing final 'end'";
  match !sql with
  | None -> fail "repro has no 'query' line"
  | Some q ->
    { notes = List.rev !notes; seed = !seed; oracle = !oracle;
      spec = { Dbspec.tables = List.rev !tables }; sql = q }

let save path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string r))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let replay ?grid r =
  match Sql.Parser.parse r.sql with
  | [ Sql.Ast.Select_stmt q ] -> Oracle.check ?grid r.spec q
  | _ -> Some { Oracle.oracle = "repro"; cfg = ""; detail = "repro SQL is not a single SELECT statement" }
  | exception e ->
    Some
      { Oracle.oracle = "repro"; cfg = "";
        detail = "repro SQL does not parse: " ^ Printexc.to_string e }
