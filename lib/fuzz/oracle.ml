(* Differential oracle stack: run one case through a grid of pipeline
   configurations and cross-check everything the system promises to keep
   invariant across them. *)

open Relalg
module P = Core.Pipeline

type cfg = { cname : string; config : P.config; counter_class : int }

let lint c = { c with P.lint = true }

let full_grid =
  let d = P.default_config in
  [ (* the ground truth: no rewriting, tuple-iteration interpretation *)
    { cname = "interp-norw";
      config = lint { P.naive_config with engine = `Interpreted };
      counter_class = 0 };
    { cname = "batch-norw";
      config = lint { P.naive_config with engine = `Batch };
      counter_class = 0 };
    { cname = "batch"; config = lint d; counter_class = 1 };
    { cname = "interp";
      config = lint { d with engine = `Interpreted };
      counter_class = 1 };
    (* morsel-parallel batch execution: rows AND counters must be
       bit-identical to the sequential batch run, so it joins counter
       class 1.  Tiny morsels force multi-morsel paths on fuzz-sized
       tables. *)
    { cname = "batch-dop4";
      config = lint { d with dop = 4; morsel_rows = 16 };
      counter_class = 1 };
    (* tiny chunks force selection-vector block boundaries mid-operator;
       the columnar layout must be invisible to rows and counters *)
    { cname = "batch-columnar";
      config = lint { d with chunk_rows = 7 };
      counter_class = 1 };
    { cname = "batch-bushy";
      config =
        lint { d with join_config = { d.join_config with bushy = true } };
      counter_class = -1 };
    { cname = "batch-exh";
      config =
        lint { d with join_config = Systemr.Join_order.exhaustive d.join_config };
      counter_class = -1 };
    (* analyzer-backed rewrites + provable-bound lints; the extra scan
       filters shift the cost counters, so no counter class *)
    { cname = "batch-analysis";
      config = lint { d with analysis = true };
      counter_class = -1 };
    (* estimator variants.  [run_one] resets the carried state per case,
       so the first (only) grid run starts from an empty feedback cache /
       sketch registry and must behave exactly like the stock histogram
       path — counter class 1.  The loop-closing (second-run) behavior is
       exercised by the dedicated feedback/sketch oracles below. *)
    { cname = "batch-feedback";
      config = lint { d with estimator = `Feedback (Stats.Feedback.create ()) };
      counter_class = 1 };
    { cname = "batch-sketch";
      config =
        lint { d with estimator = `Sketch (Stats.Sketch.registry_create ()) };
      counter_class = 1 } ]

let fast_grid =
  List.filter
    (fun c ->
       List.mem c.cname
         [ "interp-norw"; "batch"; "interp"; "batch-dop4"; "batch-columnar";
           "batch-analysis" ])
    full_grid

type failure = { oracle : string; cfg : string; detail : string }

let pp_failure ppf f =
  Fmt.pf ppf "[%s%s] %s" f.oracle
    (if f.cfg = "" then "" else "/" ^ f.cfg)
    f.detail

let binds spec ast =
  let cat, _ = Dbspec.build spec in
  match Sql.Binder.bind_query cat ast with
  | _ -> true
  | exception _ -> false

(* ------------------------------------------------------------------ *)
(* Oracle 1: printer → lexer → parser → binder round-trip. *)

let roundtrip spec ast =
  let cat, _ = Dbspec.build spec in
  match Sql.Binder.bind_query cat ast with
  | exception e ->
    Some
      { oracle = "bind"; cfg = "";
        detail = "original AST does not bind: " ^ Printexc.to_string e }
  | b0 -> (
    let txt = Sql.Printer.query_to_string ast in
    match Sql.Parser.parse txt with
    | [ Sql.Ast.Select_stmt ast' ] -> (
      match Sql.Binder.bind_query cat ast' with
      | b1 ->
        if b0 = b1 then None
        else
          Some
            { oracle = "sql-roundtrip"; cfg = "";
              detail = "re-parsed query binds differently: " ^ txt }
      | exception e ->
        Some
          { oracle = "sql-roundtrip"; cfg = "";
            detail =
              Printf.sprintf "re-parsed query does not bind (%s): %s"
                (Printexc.to_string e) txt })
    | _ ->
      Some
        { oracle = "sql-roundtrip"; cfg = "";
          detail = "did not parse back to a single SELECT: " ^ txt }
    | exception e ->
      Some
        { oracle = "sql-roundtrip"; cfg = "";
          detail =
            Printf.sprintf "printed SQL does not parse (%s): %s"
              (Printexc.to_string e) txt })

(* ------------------------------------------------------------------ *)
(* Grid execution *)

type run = {
  res : Exec.Executor.result;
  counters : Exec.Context.snapshot;
  diags : Verify.Diag.t list;
}

let run_one spec ast c =
  let cat, db = Dbspec.build spec in
  let q = Sql.Binder.bind_query cat ast in
  (* grid configs are module-level values shared across cases; reset the
     estimator state they carry so every case starts from a cold cache *)
  (match c.config.P.estimator with
   | `Histogram -> ()
   | `Feedback fb -> Stats.Feedback.clear fb
   | `Sketch reg -> Stats.Sketch.registry_clear reg);
  let ctx = Exec.Context.create () in
  let res, reports = P.run_query ~ctx ~config:c.config cat db q in
  { res;
    counters = Exec.Context.snapshot ctx;
    diags = List.concat_map (fun r -> r.P.diags) reports }

(* ------------------------------------------------------------------ *)
(* Oracle: ORDER BY output really is ordered.

   Applicable to single-block, non-DISTINCT queries whose every sort key
   is also a projected item (so the key survives into the output).  The
   engines sort with [Value.compare]; we re-check with the same total
   order. *)

let sort_key_indexes (ast : Sql.Ast.query) =
  match ast with
  | Sql.Ast.Union _ -> None
  | Sql.Ast.Single s ->
    if s.Sql.Ast.distinct || s.Sql.Ast.order_by = [] then None
    else
      let items =
        List.filter_map
          (function Sql.Ast.Item (e, _) -> Some e | Sql.Ast.Star -> None)
          s.Sql.Ast.items
      in
      if List.length items <> List.length s.Sql.Ast.items then None
      else
        let find e =
          let rec go i = function
            | [] -> None
            | it :: _ when it = e -> Some i
            | _ :: rest -> go (i + 1) rest
          in
          go 0 items
        in
        let rec map = function
          | [] -> Some []
          | (e, dir) :: rest -> (
            match (find e, map rest) with
            | Some i, Some tl -> Some ((i, dir = Algebra.Desc) :: tl)
            | _ -> None)
        in
        map s.Sql.Ast.order_by

let is_sorted keys (res : Exec.Executor.result) =
  let cmp a b =
    let rec go = function
      | [] -> 0
      | (i, desc) :: rest -> (
        match Value.compare (Tuple.get a i) (Tuple.get b i) with
        | 0 -> go rest
        | c -> if desc then -c else c)
    in
    go keys
  in
  let ok = ref true in
  Array.iteri
    (fun i r -> if i > 0 && cmp res.Exec.Executor.rows.(i - 1) r > 0 then ok := false)
    res.Exec.Executor.rows;
  !ok

(* ------------------------------------------------------------------ *)

let first_some fs = List.find_map (fun f -> f ()) fs

let check_case ?(grid = full_grid) spec ast =
  match roundtrip spec ast with
  | Some f -> Some f
  | None ->
    let runs =
      List.map
        (fun c ->
           ( c,
             match run_one spec ast c with
             | r -> Ok r
             | exception e -> Error (Printexc.to_string e) ))
        grid
    in
    let exception_check () =
      List.find_map
        (fun (c, r) ->
           match r with
           | Error d -> Some { oracle = "exception"; cfg = c.cname; detail = d }
           | Ok _ -> None)
        runs
    in
    let multiset_check () =
      match runs with
      | (_, Ok ref_) :: rest ->
        List.find_map
          (fun (c, r) ->
             match r with
             | Ok r
               when not (Exec.Executor.same_multiset ref_.res r.res) ->
               Some
                 { oracle = "multiset"; cfg = c.cname;
                   detail =
                     Printf.sprintf
                       "%d rows vs %d in the reference (or equal counts, \
                        different rows)"
                       (Array.length r.res.Exec.Executor.rows)
                       (Array.length ref_.res.Exec.Executor.rows) }
             | _ -> None)
          rest
      | _ -> None
    in
    let counters_check () =
      let classes =
        List.sort_uniq compare
          (List.filter_map
             (fun (c, _) ->
                if c.counter_class >= 0 then Some c.counter_class else None)
             runs)
      in
      List.find_map
        (fun cl ->
           let members =
             List.filter_map
               (fun (c, r) ->
                  match r with
                  | Ok r when c.counter_class = cl -> Some (c, r)
                  | _ -> None)
               runs
           in
           match members with
           | (c0, r0) :: rest ->
             List.find_map
               (fun (c, r) ->
                  if r.counters = r0.counters then None
                  else
                    let s = Fmt.str "%a" Exec.Context.pp_snapshot in
                    Some
                      { oracle = "counters"; cfg = c.cname;
                        detail =
                          Printf.sprintf "%s, but %s has %s" (s r.counters)
                            c0.cname (s r0.counters) })
               rest
           | [] -> None)
        classes
    in
    let lint_check () =
      (* estimate-vs-envelope warnings are advisory (the estimator keeps
         deliberate slack); only hard diagnostics fail the oracle —
         est-zero-nonempty stays an error and is not filtered *)
      let soft =
        [ "est-above-envelope"; "est-below-envelope"; "unknown-column-type" ]
      in
      List.find_map
        (fun (c, r) ->
           match r with
           | Ok r -> (
             let hard =
               List.filter
                 (fun (d : Verify.Diag.t) ->
                    not (List.mem d.Verify.Diag.code soft))
                 r.diags
             in
             match hard with
             | [] -> None
             | d :: _ ->
               Some
                 { oracle = "lint"; cfg = c.cname;
                   detail =
                     Printf.sprintf "%d diagnostic(s), first: %s"
                       (List.length hard)
                       (Verify.Diag.to_string d) })
           | Error _ -> None)
        runs
    in
    let sorted_check () =
      match sort_key_indexes ast with
      | None -> None
      | Some keys ->
        List.find_map
          (fun (c, r) ->
             match r with
             | Ok r when not (is_sorted keys r.res) ->
               Some
                 { oracle = "sortedness"; cfg = c.cname;
                   detail = "ORDER BY output is not ordered" }
             | _ -> None)
          runs
    in
    (* Estimate-sanity oracle (soft): one instrumented run.  The worst
       per-operator q-error lands in the metrics registry (the pipeline
       records it), but only an *infinite* q-error — an operator that
       produced rows where the optimizer estimated exactly zero — is a
       failure.  Finite misestimates are data, not bugs; never-executed
       operators are skipped. *)
    let qerror_check () =
      let cat, db = Dbspec.build spec in
      let q = Sql.Binder.bind_query cat ast in
      let config = { P.default_config with instrument = true } in
      match P.run_query ~config cat db q with
      | exception _ -> None (* crashes belong to the exception oracle *)
      | _, reports ->
        List.concat_map (fun r -> r.P.op_stats) reports
        |> List.find_map (fun (o : Exec.Instrument.op) ->
            if
              o.Exec.Instrument.executed
              && o.Exec.Instrument.act_rows > 0
              && (match o.Exec.Instrument.est_rows with
                  | Some e -> e <= 0.
                  | None -> false)
            then
              Some
                { oracle = "qerror"; cfg = "batch-instr";
                  detail =
                    Printf.sprintf
                      "op %d (%s): estimated 0 rows, produced %d"
                      o.Exec.Instrument.id
                      (Exec.Plan.describe o.Exec.Instrument.node)
                      o.Exec.Instrument.act_rows }
            else None)
    in
    (* Loop-closing oracles: run the same query twice with a shared
       estimator state.  The second run optimizes with what the first
       execution recorded (feedback actuals / Fast-AGMS sketches);
       whatever plan that produces must still return the reference
       multiset, and — for feedback, when the fed-back plan equals the
       histogram plan, so op-level estimates are comparable — the worst
       finite q-error must not exceed the histogram-only run's.  (When
       the overrides change the join order, per-operator q-errors
       describe different operators and are not comparable.) *)
    let max_qerror reports =
      List.concat_map (fun r -> r.P.op_stats) reports
      |> List.fold_left
           (fun acc (o : Exec.Instrument.op) ->
              match o.Exec.Instrument.est_rows with
              | Some e
                when o.Exec.Instrument.executed
                     && o.Exec.Instrument.act_rows > 0 && e > 0. ->
                let a = float_of_int o.Exec.Instrument.act_rows in
                Float.max acc (Float.max (e /. a) (a /. e))
              | _ -> acc)
           1.
    in
    let plans_of reports =
      String.concat "\n---\n"
        (List.map
           (fun r ->
              match r.P.plan with
              | Some p -> Exec.Plan.to_string p
              | None -> "<interpreted>")
           reports)
    in
    let rerun_check name state () =
      let cat, db = Dbspec.build spec in
      let q = Sql.Binder.bind_query cat ast in
      let config =
        { P.default_config with estimator = state; instrument = true }
      in
      match
        let r1 = P.run_query ~config cat db q in
        let r2 = P.run_query ~config cat db q in
        (r1, r2)
      with
      | exception e ->
        Some
          { oracle = name; cfg = name ^ "-rerun";
            detail = "repeated run raised: " ^ Printexc.to_string e }
      | (res1, reps1), (res2, reps2) ->
        if not (Exec.Executor.same_multiset res1 res2) then
          Some
            { oracle = name; cfg = name ^ "-rerun";
              detail =
                Printf.sprintf
                  "re-optimized run returned %d rows vs %d on the first run"
                  (Array.length res2.Exec.Executor.rows)
                  (Array.length res1.Exec.Executor.rows) }
        else if
          name = "feedback"
          && plans_of reps1 = plans_of reps2
          && max_qerror reps2 > max_qerror reps1 *. (1. +. 1e-9)
        then
          Some
            { oracle = name; cfg = name ^ "-rerun";
              detail =
                Printf.sprintf
                  "fed-back re-optimization worsened the worst q-error: \
                   %.4f vs %.4f on the cold run of the same plan"
                  (max_qerror reps2) (max_qerror reps1) }
        else None
    in
    let feedback_check =
      rerun_check "feedback" (`Feedback (Stats.Feedback.create ()))
    in
    let sketch_check =
      rerun_check "sketch" (`Sketch (Stats.Sketch.registry_create ()))
    in
    (* Analyzer oracle (hard): the abstract interpretation must be sound
       on every query — the reference engine's actual row count lands
       inside the provable cardinality envelope (so provably-empty
       queries really produce zero rows), no NULL appears in a column
       the analysis proved non-null, and every non-NULL numeric output
       value lies inside its derived interval. *)
    let analysis_check () =
      match runs with
      | (_, Ok ref_) :: _ -> (
        let cat, db = Dbspec.build spec in
        match
          let q = Sql.Binder.bind_query cat ast in
          Analysis.Absint.of_query ~db q
        with
        | exception e ->
          Some
            { oracle = "analysis"; cfg = "";
              detail = "analyzer raised: " ^ Printexc.to_string e }
        | st ->
          let rows = ref_.res.Exec.Executor.rows in
          let act = float_of_int (Array.length rows) in
          if not (Analysis.Domain.env_contains st.Analysis.Absint.env act)
          then
            Some
              { oracle = "analysis"; cfg = "";
                detail =
                  Fmt.str "actual row count %g outside provable envelope %a"
                    act Analysis.Domain.pp_envelope st.Analysis.Absint.env }
          else if
            List.length st.Analysis.Absint.cols
            <> Schema.arity ref_.res.Exec.Executor.schema
          then None
          else begin
            let violation = ref None in
            List.iteri
              (fun j (_, (a : Analysis.Domain.aval)) ->
                 Array.iter
                   (fun t ->
                      if !violation = None then begin
                        let v = Tuple.get t j in
                        if Value.is_null v then begin
                          if a.Analysis.Domain.null = Analysis.Domain.Non_null
                          then
                            violation :=
                              Some
                                (Fmt.str
                                   "output column %d: NULL where the \
                                    analysis proved non-null"
                                   j)
                        end
                        else
                          match Value.to_float v with
                          | Some f
                            when not
                                   (Analysis.Domain.contains
                                      a.Analysis.Domain.itv f) ->
                            violation :=
                              Some
                                (Fmt.str
                                   "output column %d: value %a outside \
                                    derived interval %a"
                                   j Value.pp v Analysis.Domain.pp_interval
                                   a.Analysis.Domain.itv)
                          | _ -> ()
                      end)
                   rows)
              st.Analysis.Absint.cols;
            Option.map
              (fun d -> { oracle = "analysis"; cfg = ""; detail = d })
              !violation
          end)
      | _ -> None
    in
    first_some
      [ exception_check; multiset_check; counters_check; lint_check;
        sorted_check; qerror_check; feedback_check; sketch_check;
        analysis_check ]

let check ?grid spec ast =
  let t0 = Obs.Clock.now () in
  let failure = check_case ?grid spec ast in
  Obs.Metrics.observe_hist Obs.Metrics.fuzz_case_seconds
    (Obs.Clock.elapsed_s t0);
  Obs.Metrics.incr
    (match failure with
     | None -> Obs.Metrics.fuzz_oracle_pass
     | Some _ -> Obs.Metrics.fuzz_oracle_fail);
  failure
