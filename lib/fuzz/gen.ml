(* Seeded random workload generation for the differential fuzzer.

   The generator's job is breadth with reproducibility: random schemas
   (column presence, value domains, Zipfian skew, NULL fractions, empty
   tables, index sets) and random queries over them that every layer of
   the system accepts — lexer through binder through both engines — while
   staying inside a work budget (join products are capped so the naive
   tuple-iteration oracle stays fast). *)

open Relalg
module A = Sql.Ast
module G = Workload.Gen

(* ------------------------------------------------------------------ *)
(* Databases *)

(* Keep the worst-case join product bounded: the oracle runs every query
   through a config grid including the naive interpreter. *)
let max_join_product = 250_000

let gen_table st ~name : Dbspec.table =
  let rows_n =
    match G.uniform_int st ~lo:0 ~hi:9 with
    | 0 -> 0 (* empty tables are a first-class edge case *)
    | 1 -> 1
    | 2 | 3 -> G.uniform_int st ~lo:2 ~hi:8
    | 4 | 5 | 6 -> G.uniform_int st ~lo:15 ~hi:60
    | _ -> G.uniform_int st ~lo:61 ~hi:140
  in
  (* join-key domain: big tables get wider domains so equi-join fanout
     stays bounded even under skew *)
  let dom =
    if rows_n > 60 then G.uniform_int st ~lo:15 ~hi:40
    else List.nth [ 3; 5; 12 ] (G.uniform_int st ~lo:0 ~hi:2)
  in
  let skew = if G.chance st 0.3 then 1.2 else 0. in
  let zip = G.zipf_make ~n:(dom + 1) ~skew in
  let nf_k = List.nth [ 0.; 0.; 0.12; 0.3 ] (G.uniform_int st ~lo:0 ~hi:3) in
  let has_g = G.chance st 0.8 in
  let has_v = G.chance st 0.8 in
  let has_w = G.chance st 0.35 in
  let has_s = G.chance st 0.6 in
  let cols =
    [ ("id", Value.Tint); ("k", Value.Tint) ]
    @ (if has_g then [ ("g", Value.Tint) ] else [])
    @ (if has_v then [ ("v", Value.Tint) ] else [])
    @ (if has_w then [ ("w", Value.Tint) ] else [])
    @ if has_s then [ ("s", Value.Tstring) ] else []
  in
  let row i =
    let k =
      if G.chance st nf_k then Value.Null else Value.Int (G.zipf_draw st zip - 1)
    in
    Array.of_list
      ([ Value.Int i; k ]
       @ (if has_g then
            [ (if G.chance st 0.15 then Value.Null
               else Value.Int (G.uniform_int st ~lo:0 ~hi:3)) ]
          else [])
       @ (if has_v then
            [ (if G.chance st 0.1 then Value.Null
               else Value.Int (G.uniform_int st ~lo:0 ~hi:100)) ]
          else [])
       @ (if has_w then
            [ (if G.chance st 0.1 then Value.Null
               else Value.Int (G.uniform_int st ~lo:(-50) ~hi:50)) ]
          else [])
       @
       if has_s then
         [ (if G.chance st 0.2 then Value.Null
            else Value.Str (G.pick st G.name_pool)) ]
       else [])
  in
  let rows = Array.init rows_n row in
  let indexes =
    (* clustered only on id: its values follow insertion order *)
    (if G.chance st 0.5 then [ { Dbspec.icols = [ "id" ]; iclustered = true } ]
     else [])
    @ (if G.chance st 0.5 then
         [ { Dbspec.icols = [ "k" ]; iclustered = false } ]
       else [])
    @
    if has_g && G.chance st 0.2 then
      [ { Dbspec.icols = [ "k"; "g" ]; iclustered = false } ]
    else []
  in
  { Dbspec.tname = name; cols; rows; indexes }

let db ~seed : Dbspec.t =
  let st = G.rng (G.derive seed 0) in
  let ntab = G.uniform_int st ~lo:2 ~hi:4 in
  { Dbspec.tables =
      List.init ntab (fun i -> gen_table st ~name:(Printf.sprintf "t%d" (i + 1)))
  }

(* ------------------------------------------------------------------ *)
(* Queries *)

(* A relation in scope: its alias, the visible columns, and (for base
   tables) the spec so constants can be sampled from actual data. *)
type rel = {
  alias : string;
  tbl : Dbspec.table option;
  rcols : (string * Value.ty) list;
}

let int_cols r = List.filter (fun (_, ty) -> ty = Value.Tint) r.rcols
let str_cols r = List.filter (fun (_, ty) -> ty = Value.Tstring) r.rcols

let col_ref r (n, _ty) = A.Column (Some r.alias, n)

let cmp_op st =
  List.nth
    [ Expr.Eq; Expr.Eq; Expr.Eq; Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge; Expr.Neq ]
    (G.uniform_int st ~lo:0 ~hi:7)

(* Constants sampled from the column's actual data (so predicates hit),
   sometimes perturbed, sometimes NULL literals (three-valued logic). *)
let const_for st (r : rel) (cname, cty) : A.expr =
  if G.chance st 0.06 then A.Lit_null
  else
    match r.tbl with
    | Some tb when Array.length tb.Dbspec.rows > 0 && G.chance st 0.85 -> (
      let idx =
        let rec go i = function
          | [] -> 0
          | (n, _) :: _ when n = cname -> i
          | _ :: rest -> go (i + 1) rest
        in
        go 0 tb.Dbspec.cols
      in
      let row =
        tb.Dbspec.rows.(G.uniform_int st ~lo:0
                          ~hi:(Array.length tb.Dbspec.rows - 1))
      in
      match row.(idx) with
      | Value.Int i ->
        A.Lit_int
          (if G.chance st 0.25 then i + G.uniform_int st ~lo:(-2) ~hi:2 else i)
      | Value.Str s -> A.Lit_string s
      | Value.Float f -> A.Lit_float f
      | Value.Bool b -> A.Lit_bool b
      | Value.Null ->
        if cty = Value.Tstring then A.Lit_string (G.pick st G.name_pool)
        else A.Lit_int (G.uniform_int st ~lo:(-2) ~hi:12))
    | _ ->
      if cty = Value.Tstring then A.Lit_string (G.pick st G.name_pool)
      else A.Lit_int (G.uniform_int st ~lo:(-2) ~hi:12)

(* Single-relation filter predicate. *)
let gen_filter_base st (r : rel) : A.expr =
  let ics = int_cols r in
  let scs = str_cols r in
  let icol () = G.pick st ics in
  let int_cmp () =
    let c = icol () in
    A.Cmp (cmp_op st, col_ref r c, const_for st r c)
  in
  let str_cmp () =
    let c = G.pick st scs in
    A.Cmp
      ((if G.chance st 0.8 then Expr.Eq else Expr.Neq),
       col_ref r c, const_for st r c)
  in
  let base () = if scs <> [] && G.chance st 0.25 then str_cmp () else int_cmp () in
  match G.uniform_int st ~lo:0 ~hi:9 with
  | 0 | 1 | 2 | 3 | 4 -> base ()
  | 5 ->
    let c = if scs <> [] && G.chance st 0.4 then G.pick st scs else icol () in
    A.Is_null (col_ref r c, G.chance st 0.5)
  | 6 -> A.Not (base ())
  | 7 -> A.Or (base (), base ())
  | 8 when List.length ics >= 2 ->
    let a = icol () and b = icol () in
    A.Cmp (cmp_op st, col_ref r a, col_ref r b)
  | _ ->
    let c = icol () in
    let arith =
      A.Binop
        ((if G.chance st 0.5 then Expr.Add else Expr.Mod),
         col_ref r c,
         A.Lit_int (G.uniform_int st ~lo:1 ~hi:7))
    in
    A.Cmp (cmp_op st, arith, const_for st r c)

(* Occasionally inject a provably contradictory conjunction (an empty
   range or conflicting equalities) so the analyzer's empty-subtree
   folding and the provably-empty oracle are exercised on every run. *)
let gen_filter st (r : rel) : A.expr =
  match int_cols r with
  | _ :: _ as ics when G.chance st 0.04 ->
    let c = G.pick st ics in
    let v = G.uniform_int st ~lo:(-2) ~hi:12 in
    let col = col_ref r c in
    if G.chance st 0.5 then
      A.And
        (A.Cmp (Expr.Gt, col, A.Lit_int v),
         A.Cmp (Expr.Lt, col, A.Lit_int (v - G.uniform_int st ~lo:0 ~hi:3)))
    else
      A.And
        (A.Cmp (Expr.Eq, col, A.Lit_int v),
         A.Cmp (Expr.Eq, col, A.Lit_int (v + 1 + G.uniform_int st ~lo:0 ~hi:3)))
  | _ -> gen_filter_base st r

(* Preferred join column: "k" when present on both, else any int column. *)
let jcol st r =
  let ics = int_cols r in
  match List.filter (fun (n, _) -> n = "k") ics with
  | k :: _ when G.chance st 0.75 -> k
  | _ -> G.pick st ics

let join_pred st a b : A.expr =
  A.Cmp (Expr.Eq, col_ref a (jcol st a), col_ref b (jcol st b))

let and_all = function
  | [] -> None
  | cs ->
    (* right-nested, matching the parser's associativity *)
    let rec nest = function
      | [ c ] -> c
      | c :: rest -> A.And (c, nest rest)
      | [] -> assert false
    in
    Some (nest cs)

let fresh_alias fresh prefix =
  incr fresh;
  Printf.sprintf "%s%d" prefix !fresh

(* ------------------------------------------------------------------ *)
(* Subqueries *)

(* Inner select over one fresh relation; [corr] optionally correlates it
   with an outer relation. *)
let gen_sub_conjunct st (spec : Dbspec.t) ~fresh ~(rels : rel list) : A.expr =
  let outer = G.pick st rels in
  let tb = G.pick st spec.Dbspec.tables in
  let s =
    { alias = fresh_alias fresh "r"; tbl = Some tb; rcols = tb.Dbspec.cols }
  in
  let corr () = A.Cmp (Expr.Eq, col_ref s (jcol st s), col_ref outer (jcol st outer)) in
  let filters want_corr =
    (if want_corr then [ corr () ] else [])
    @ if G.chance st 0.5 then [ gen_filter st s ] else []
  in
  let from = [ A.Plain (A.Table (tb.Dbspec.tname, Some s.alias)) ] in
  let simple_sub items where_cs =
    { A.distinct = false; items; from; where = and_all where_cs;
      group_by = []; having = None; order_by = [] }
  in
  match G.uniform_int st ~lo:0 ~hi:3 with
  | 0 ->
    (* IN subquery, correlated with probability 0.3 *)
    let c = jcol st s in
    let sub =
      simple_sub [ A.Item (col_ref s c, None) ] (filters (G.chance st 0.3))
    in
    A.In_query (col_ref outer (jcol st outer), sub)
  | 1 ->
    (* EXISTS, usually correlated *)
    let sub = simple_sub [ A.Star ] (filters (G.chance st 0.8)) in
    A.Exists (true, sub)
  | 2 ->
    (* NOT EXISTS, usually correlated *)
    let sub = simple_sub [ A.Star ] (filters (G.chance st 0.8)) in
    A.Exists (false, sub)
  | _ ->
    (* scalar aggregate subquery — COUNT star included: the count bug *)
    let agg =
      match G.uniform_int st ~lo:0 ~hi:4 with
      | 0 -> A.Agg (A.Fn_count, None)
      | 1 -> A.Agg (A.Fn_min, Some (col_ref s (G.pick st (int_cols s))))
      | 2 -> A.Agg (A.Fn_max, Some (col_ref s (G.pick st (int_cols s))))
      | 3 -> A.Agg (A.Fn_sum, Some (col_ref s (G.pick st (int_cols s))))
      | _ -> A.Agg (A.Fn_avg, Some (col_ref s (G.pick st (int_cols s))))
    in
    let sub =
      simple_sub [ A.Item (agg, Some "sv") ] (filters (G.chance st 0.5))
    in
    let oc = G.pick st (int_cols outer) in
    A.Cmp_query (cmp_op st, col_ref outer oc, sub)

(* ------------------------------------------------------------------ *)
(* Derived tables *)

let gen_derived st (spec : Dbspec.t) ~fresh : rel * A.from_item =
  let tb = G.pick st spec.Dbspec.tables in
  let s =
    { alias = fresh_alias fresh "r"; tbl = Some tb; rcols = tb.Dbspec.cols }
  in
  let d_alias = fresh_alias fresh "d" in
  let from = [ A.Plain (A.Table (tb.Dbspec.tname, Some s.alias)) ] in
  if G.chance st 0.3 && List.mem_assoc "k" tb.Dbspec.cols then begin
    (* grouped view: SELECT s.k AS k, COUNT( * ) AS cnt ... GROUP BY s.k *)
    let sel =
      { A.distinct = false;
        items =
          [ A.Item (col_ref s ("k", Value.Tint), Some "k");
            A.Item (A.Agg (A.Fn_count, None), Some "cnt") ];
        from;
        where = (if G.chance st 0.5 then Some (gen_filter st s) else None);
        group_by = [ col_ref s ("k", Value.Tint) ]; having = None;
        order_by = [] }
    in
    ( { alias = d_alias; tbl = None;
        rcols = [ ("k", Value.Tint); ("cnt", Value.Tint) ] },
      A.Subquery (sel, d_alias) )
  end
  else begin
    (* SPJ view (mergeable), sometimes DISTINCT (not mergeable) *)
    let keep =
      List.filter
        (fun (n, _) -> n = "id" || n = "k" || n = "g" || n = "v")
        tb.Dbspec.cols
    in
    let sel =
      { A.distinct = G.chance st 0.3;
        items = List.map (fun (n, ty) -> A.Item (col_ref s (n, ty), Some n)) keep;
        from;
        where = (if G.chance st 0.6 then Some (gen_filter st s) else None);
        group_by = []; having = None; order_by = [] }
    in
    ({ alias = d_alias; tbl = None; rcols = keep }, A.Subquery (sel, d_alias))
  end

(* ------------------------------------------------------------------ *)
(* SELECT *)

let product tbls =
  List.fold_left (fun p (tb : Dbspec.table) -> p * max 1 (Array.length tb.Dbspec.rows)) 1 tbls

let gen_select st (spec : Dbspec.t) ~fresh ~depth : A.select =
  let nrel =
    List.nth [ 1; 1; 1; 2; 2; 2; 2; 2; 3; 3; 3 ] (G.uniform_int st ~lo:0 ~hi:10)
  in
  (* choose base tables under the join-product cap *)
  let tbls =
    let rec add acc k =
      if k = 0 then acc
      else
        let cand = G.pick st spec.Dbspec.tables in
        if product (cand :: acc) <= max_join_product then add (cand :: acc) (k - 1)
        else
          let fits =
            List.filter
              (fun t -> product (t :: acc) <= max_join_product)
              spec.Dbspec.tables
          in
          if fits = [] then acc else add (G.pick st fits :: acc) (k - 1)
    in
    add [] nrel
  in
  let plain_rels =
    List.map
      (fun tb ->
         { alias = fresh_alias fresh "r"; tbl = Some tb;
           rcols = tb.Dbspec.cols })
      tbls
  in
  (* optionally replace one base relation with a derived table *)
  let plain_rels, derived_items =
    if depth > 0 && G.chance st 0.15 then
      let d, item = gen_derived st spec ~fresh in
      (d :: List.tl plain_rels, [ (d.alias, item) ])
    else (plain_rels, [])
  in
  let from_item r =
    match List.assoc_opt r.alias derived_items with
    | Some item -> item
    | None ->
      let tb = Option.get r.tbl in
      A.Table (tb.Dbspec.tname, Some r.alias)
  in
  (* join edges: mostly connected; disconnection allowed when the product
     is small (exercises the cartesian rescue path) *)
  let small = product tbls <= 30_000 in
  let edges = ref [] in
  List.iteri
    (fun i r ->
       if i > 0 then begin
         let prev = List.filteri (fun j _ -> j < i) plain_rels in
         if (not small) || G.chance st 0.88 then
           edges := !edges @ [ join_pred st (G.pick st prev) r ];
         if G.chance st 0.12 && i >= 2 then
           edges := !edges @ [ join_pred st (G.pick st prev) r ]
       end)
    plain_rels;
  (* optional LEFT OUTER JOIN *)
  let oj_rels, from =
    let plain_from =
      List.map (fun r -> A.Plain (from_item r)) plain_rels
    in
    if G.chance st 0.2 && product tbls <= 50_000 then begin
      let tb = G.pick st spec.Dbspec.tables in
      let oj =
        { alias = fresh_alias fresh "r"; tbl = Some tb; rcols = tb.Dbspec.cols }
      in
      let anchor = G.pick st plain_rels in
      let on =
        and_all
          ([ join_pred st anchor oj ]
           @ if G.chance st 0.3 then [ gen_filter st oj ] else [])
      in
      let last, init =
        match List.rev plain_from with
        | last :: init_rev -> (last, List.rev init_rev)
        | [] -> assert false
      in
      let joined =
        A.Left_outer_join
          ((match last with A.Plain it -> A.Plain it | j -> j),
           (match from_item oj with it -> it),
           Option.get on)
      in
      ([ oj ], init @ [ joined ])
    end
    else ([], plain_from)
  in
  let all_rels = plain_rels @ oj_rels in
  (* filters — never on the outer-joined relation: WHERE runs before the
     outerjoin attaches and the binder rejects such references *)
  let nfilters = G.uniform_int st ~lo:0 ~hi:3 in
  let filters =
    List.init nfilters (fun _ -> gen_filter st (G.pick st plain_rels))
  in
  let subs =
    if depth > 0 && G.chance st 0.35 then
      [ gen_sub_conjunct st spec ~fresh ~rels:plain_rels ]
    else []
  in
  let where = and_all (!edges @ filters @ subs) in
  if G.chance st 0.3 then begin
    (* grouped query *)
    let key_cands =
      (* distinct output names: one relation per column name *)
      let seen = Hashtbl.create 8 in
      List.concat_map
        (fun r ->
           List.filter_map
             (fun (n, ty) ->
                if n <> "id" && not (Hashtbl.mem seen n) then begin
                  Hashtbl.replace seen n ();
                  Some (r, (n, ty))
                end
                else None)
             r.rcols)
        all_rels
    in
    let nkeys = min (List.length key_cands) (G.uniform_int st ~lo:1 ~hi:2) in
    let keys =
      if nkeys = 0 then []
      else begin
        (* draw without replacement *)
        let cands = ref key_cands in
        List.init nkeys (fun _ ->
            let c = G.pick st !cands in
            cands := List.filter (fun x -> x != c) !cands;
            c)
      end
    in
    let key_exprs = List.map (fun (r, c) -> col_ref r c) keys in
    let gen_agg () =
      let r = G.pick st all_rels in
      match G.uniform_int st ~lo:0 ~hi:5 with
      | 0 -> A.Agg (A.Fn_count, None)
      | 1 -> A.Agg (A.Fn_sum, Some (col_ref r (G.pick st (int_cols r))))
      | 2 -> A.Agg (A.Fn_min, Some (col_ref r (G.pick st (int_cols r))))
      | 3 -> A.Agg (A.Fn_max, Some (col_ref r (G.pick st (int_cols r))))
      | 4 -> A.Agg (A.Fn_avg, Some (col_ref r (G.pick st (int_cols r))))
      | _ ->
        let cs = str_cols r in
        if cs <> [] then A.Agg (A.Fn_count, Some (col_ref r (G.pick st cs)))
        else A.Agg (A.Fn_count, Some (col_ref r (G.pick st (int_cols r))))
    in
    let naggs = G.uniform_int st ~lo:1 ~hi:2 in
    let aggs = List.init naggs (fun _ -> gen_agg ()) in
    let items =
      List.map (fun e -> A.Item (e, None)) key_exprs
      @ List.mapi (fun i a -> A.Item (a, Some (Printf.sprintf "a%d" i))) aggs
    in
    let having =
      if G.chance st 0.35 then
        let agg =
          if G.chance st 0.6 then G.pick st aggs else gen_agg ()
        in
        Some (A.Cmp (cmp_op st, agg, A.Lit_int (G.uniform_int st ~lo:0 ~hi:5)))
      else None
    in
    let order_by =
      if G.chance st 0.35 && key_exprs <> [] then
        List.map
          (fun e ->
             (e, if G.chance st 0.3 then Algebra.Desc else Algebra.Asc))
          (if G.chance st 0.5 then [ List.hd key_exprs ] else key_exprs)
      else []
    in
    { A.distinct = G.chance st 0.1; items; from; where;
      group_by = key_exprs; having; order_by }
  end
  else begin
    (* plain select *)
    let star =
      G.chance st 0.1 && List.length all_rels = 1 && derived_items = []
    in
    let items =
      if star then [ A.Star ]
      else begin
        let nitems = G.uniform_int st ~lo:1 ~hi:3 in
        let raw =
          List.init nitems (fun _ ->
              let r = G.pick st all_rels in
              if G.chance st 0.75 then `Col (r, G.pick st r.rcols)
              else
                let a = G.pick st (int_cols r) in
                let e =
                  if G.chance st 0.5 then
                    A.Binop (Expr.Add, col_ref r a,
                             A.Lit_int (G.uniform_int st ~lo:1 ~hi:9))
                  else
                    let b = G.pick st (int_cols r) in
                    A.Binop (Expr.Mul, col_ref r a, col_ref r b)
                in
                `Expr e)
        in
        (* alias computed items always; alias columns only when their bare
           names would collide *)
        let col_names =
          List.filter_map
            (function `Col (_, (n, _)) -> Some n | `Expr _ -> None)
            raw
        in
        let dup n = List.length (List.filter (( = ) n) col_names) > 1 in
        List.mapi
          (fun i it ->
             match it with
             | `Col (r, c) ->
               let n, _ = c in
               if dup n then
                 A.Item (col_ref r c, Some (Printf.sprintf "x%d" i))
               else A.Item (col_ref r c, None)
             | `Expr e -> A.Item (e, Some (Printf.sprintf "x%d" i)))
          raw
      end
    in
    let order_by =
      if G.chance st 0.3 then
        List.init (G.uniform_int st ~lo:1 ~hi:2) (fun _ ->
            let r = G.pick st all_rels in
            ( col_ref r (G.pick st r.rcols),
              if G.chance st 0.3 then Algebra.Desc else Algebra.Asc ))
      else []
    in
    { A.distinct = G.chance st 0.2; items; from; where;
      group_by = []; having = None; order_by }
  end

(* ------------------------------------------------------------------ *)
(* Full queries *)

let query ~seed (spec : Dbspec.t) : A.query =
  let st = G.rng (G.derive seed 1) in
  let fresh = ref 0 in
  if G.chance st 0.1 then begin
    (* UNION [ALL]: fixed-arity single-int-column arms *)
    let arm () =
      let tb = G.pick st spec.Dbspec.tables in
      let r =
        { alias = fresh_alias fresh "r"; tbl = Some tb; rcols = tb.Dbspec.cols }
      in
      let c = G.pick st (int_cols r) in
      { A.distinct = false;
        items = [ A.Item (col_ref r c, Some "u0") ];
        from = [ A.Plain (A.Table (tb.Dbspec.tname, Some r.alias)) ];
        where = (if G.chance st 0.6 then Some (gen_filter st r) else None);
        group_by = []; having = None; order_by = [] }
    in
    let all = G.chance st 0.5 in
    A.Union (A.Single (arm ()), all, A.Single (arm ()))
  end
  else A.Single (gen_select st spec ~fresh ~depth:1)

let db = db

let case ~seed =
  let spec = db ~seed in
  (spec, query ~seed spec)

(* Relation aliases in FROM clauses, all blocks included. *)
let relation_count (q : A.query) : int =
  let n = ref 0 in
  let rec go_query = function
    | A.Single s -> go_select s
    | A.Union (l, _, r) ->
      go_query l;
      go_query r
  and go_select (s : A.select) =
    List.iter go_joined s.A.from;
    List.iter go_item s.A.items;
    Option.iter go_expr s.A.where;
    List.iter go_expr s.A.group_by;
    Option.iter go_expr s.A.having;
    List.iter (fun (e, _) -> go_expr e) s.A.order_by
  and go_joined = function
    | A.Plain it -> go_from_item it
    | A.Left_outer_join (l, it, pred) ->
      go_joined l;
      go_from_item it;
      go_expr pred
  and go_from_item = function
    | A.Table _ -> incr n
    | A.Subquery (s, _) ->
      incr n;
      go_select s
  and go_item = function
    | A.Star -> ()
    | A.Item (e, _) -> go_expr e
  and go_expr = function
    | A.In_query (e, s) | A.Cmp_query (_, e, s) ->
      go_expr e;
      go_select s
    | A.Exists (_, s) -> go_select s
    | A.Binop (_, a, b) | A.Cmp (_, a, b) | A.And (a, b) | A.Or (a, b) ->
      go_expr a;
      go_expr b
    | A.Not a | A.Is_null (a, _) -> go_expr a
    | A.Agg (_, arg) -> Option.iter go_expr arg
    | A.Lit_int _ | A.Lit_float _ | A.Lit_string _ | A.Lit_bool _ | A.Lit_null
    | A.Column _ -> ()
  in
  go_query q;
  !n
