(** The differential oracle stack.

    One case = a database spec plus a query AST.  [check] runs the query
    through a grid of pipeline configurations (engines, tree shapes,
    enumerators, rewrites on/off — lint always on) and reports the first
    divergence found by any oracle:

    - [sql-roundtrip]: pretty-print, re-lex/re-parse/re-bind, compare the
      bound tree against binding the original AST;
    - [exception]: any layer raising on a query the generator deems valid;
    - [multiset]: result rows differ from the naive-reference config's;
    - [counters]: cost accounting (seq/rand/spill I/O, CPU ops) differs
      between configs that are identical except for the engine — the PR-2
      bit-identical-accounting guarantee;
    - [lint]: any {!Verify} diagnostic from any stage of any config;
    - [sortedness]: ORDER BY output not actually ordered (checked when the
      sort keys are projected and no DISTINCT/UNION re-hashes the rows);
    - [qerror]: a soft estimate-sanity pass — one instrumented run whose
      worst per-operator q-error lands in the {!Obs.Metrics} registry;
      only an infinite q-error (rows produced where the optimizer
      estimated exactly zero) fails.

    [None] means every config agreed on everything.  Each call bumps the
    [fuzz_oracle_pass] / [fuzz_oracle_fail] metric. *)

type cfg = {
  cname : string;
  config : Core.Pipeline.config;
  counter_class : int;
      (** configs sharing a class must produce identical cost accounting;
          [-1] = not compared *)
}

(** Reference (naive interpreter, no rewrites) first, then batch/interp
    pairs, bushy, exhaustive enumeration, rewrites-off. *)
val full_grid : cfg list

(** Reference plus the default batch/interp pair — for smoke runs. *)
val fast_grid : cfg list

type failure = { oracle : string; cfg : string; detail : string }

val pp_failure : Format.formatter -> failure -> unit

(** Does the query bind against (a fresh build of) the spec?  The
    shrinker's validity gate. *)
val binds : Dbspec.t -> Sql.Ast.query -> bool

val check : ?grid:cfg list -> Dbspec.t -> Sql.Ast.query -> failure option
