(** Database specifications: a value-level description of a random
    database (tables, typed columns, rows, indexes) that can be built into
    a fresh catalog + statistics registry, shrunk row by row, and written
    to / read from repro files.  Keeping the data as a spec rather than a
    live catalog is what makes failing cases minimizable and replayable. *)

open Relalg

type index = {
  icols : string list;
  iclustered : bool;
  (** only sound on columns whose values follow insertion order (the
      generator restricts clustered indexes to [id]) *)
}

type table = {
  tname : string;
  cols : (string * Value.ty) list;
  rows : Value.t array array;
  indexes : index list;
}

type t = { tables : table list }

val table_named : t -> string -> table option

(** Total rows across all tables. *)
val total_rows : t -> int

(** Build a fresh catalog and ANALYZEd statistics registry. *)
val build : t -> Storage.Catalog.t * Stats.Table_stats.db

(** Structural equality (specs are pure data). *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
