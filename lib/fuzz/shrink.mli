(** Greedy automatic minimization of failing cases.

    Starting from a (database spec, query AST) pair on which
    {!Oracle.check} reports a failure, repeatedly tries
    simplification moves — collapse UNION to one arm, drop a FROM
    relation together with everything that mentions its alias, drop
    WHERE/HAVING conjuncts, unwrap NOT/OR, shrink subqueries, drop select
    items / group keys / ORDER BY / DISTINCT, turn derived tables back
    into base tables, halve table data, drop unreferenced tables and
    columns, drop indexes — accepting a move when the shrunk case still
    binds and still fails some oracle.  Greedy to a fixpoint or until the
    oracle-call budget runs out. *)

(** [shrink ?grid ?budget spec ast] returns the minimized case.  [budget]
    bounds the number of oracle evaluations (default 400). *)
val shrink :
  ?grid:Oracle.cfg list -> ?budget:int -> Dbspec.t -> Sql.Ast.query ->
  Dbspec.t * Sql.Ast.query
