(** Fuzzing campaign driver: generate → check → shrink → repro.

    [run_seed] evaluates one seed end-to-end; [run_range] sweeps a seed
    range, stopping early after [max_failures] divergences.  Every
    failure is shrunk before being reported, and carries a ready-to-save
    {!Repro.t}. *)

type failure_case = {
  seed : int;
  failure : Oracle.failure;  (** failure of the {e shrunk} case *)
  spec : Dbspec.t;  (** shrunk database *)
  query : Sql.Ast.query;  (** shrunk query *)
  repro : Repro.t;
}

val run_seed :
  ?grid:Oracle.cfg list -> ?shrink_budget:int -> int -> failure_case option

(** [run_range ~seed count] fuzzes seeds [seed .. seed+count-1];
    [on_case] is called after every seed (for progress reporting). *)
val run_range :
  ?grid:Oracle.cfg list -> ?shrink_budget:int -> ?max_failures:int ->
  ?on_case:(seed:int -> Oracle.failure option -> unit) ->
  seed:int -> int -> failure_case list

(** Write each failure to [dir] (created if missing) as
    [seed<N>_<oracle>.repro]; returns the paths. *)
val save_failures : dir:string -> failure_case list -> string list
