(* Hierarchical span recorder.

   A recorder owns one root span and a stack of open spans; [enter]
   pushes a child of the innermost open span, [stop] pops it (closing
   any younger spans still open — defensive against exceptions skipping
   a stop).  Timing uses the shared monotonic clock, so durations can
   never go negative.

   The pipeline threads one recorder per query through
   parse -> bind -> rewrite -> optimize -> verify -> execute; the tree
   renders as indented text or line-delimited JSON ([show_wall:false]
   drops the only nondeterministic columns, for goldens), and feeds the
   Chrome-trace profile exporter. *)

type t = {
  id : int;
  parent_id : int; (* -1 for the root *)
  name : string;
  mutable attrs : (string * string) list; (* in [set_attr] order *)
  start_s : float; (* absolute Clock.now seconds *)
  mutable dur_s : float; (* -1. while open *)
  mutable children : t list; (* reversed while open; in start order after *)
}

type recorder = {
  mutable next_id : int;
  root : t;
  mutable stack : t list; (* innermost first; root at the bottom *)
}

let mk_span ~id ~parent_id ~name ~attrs =
  { id; parent_id; name; attrs; start_s = Clock.now (); dur_s = -1.;
    children = [] }

let create ?(name = "query") () : recorder =
  let root = mk_span ~id:0 ~parent_id:(-1) ~name ~attrs:[] in
  { next_id = 1; root; stack = [ root ] }

let root (r : recorder) : t = r.root

let set_attr (s : t) (k : string) (v : string) : unit =
  s.attrs <- s.attrs @ [ (k, v) ]

let enter (r : recorder) ?(attrs = []) (name : string) : t =
  let parent = match r.stack with p :: _ -> p | [] -> r.root in
  let s =
    mk_span ~id:r.next_id ~parent_id:parent.id ~name ~attrs
  in
  r.next_id <- r.next_id + 1;
  parent.children <- s :: parent.children;
  r.stack <- s :: r.stack;
  s

let close_span (s : t) : unit =
  if s.dur_s < 0. then begin
    s.dur_s <- Clock.elapsed_s s.start_s;
    s.children <- List.rev s.children
  end

(* Stop [s], closing any spans opened under it that were never stopped
   (an exception unwound past them).  Stopping a span not on the stack is
   a no-op apart from closing it. *)
let stop (r : recorder) (s : t) : unit =
  let rec pop = function
    | top :: rest ->
      close_span top;
      if top == s then r.stack <- rest else pop rest
    | [] -> r.stack <- [ r.root ]
  in
  if List.memq s r.stack then pop r.stack else close_span s

let with_span (r : recorder) ?attrs (name : string) (f : unit -> 'a) : 'a =
  let s = enter r ?attrs name in
  match f () with
  | v ->
    stop r s;
    v
  | exception e ->
    stop r s;
    raise e

(* Close everything still open (root included) and return the tree. *)
let finish (r : recorder) : t =
  List.iter close_span r.stack;
  r.stack <- [];
  close_span r.root;
  r.root

let iter (f : depth:int -> t -> unit) (s : t) : unit =
  let rec go depth s =
    f ~depth s;
    List.iter (go (depth + 1)) (if s.dur_s < 0. then List.rev s.children else s.children)
  in
  go 0 s

(* Total time of a subtree's direct children — used by tests to check
   stage spans cover the root. *)
let children_dur (s : t) : float =
  List.fold_left
    (fun acc c -> acc +. Float.max 0. c.dur_s)
    0.
    (if s.dur_s < 0. then List.rev s.children else s.children)

(* Sum of [dur_s] over every span in the tree named [name]. *)
let dur_by_name (s : t) (name : string) : float =
  let acc = ref 0. in
  iter
    (fun ~depth:_ sp ->
       if sp.name = name && sp.dur_s >= 0. then acc := !acc +. sp.dur_s)
    s;
  !acc

(* ------------------------------------------------------------------ *)
(* Rendering *)

let pp_attrs ppf = function
  | [] -> ()
  | attrs ->
    Fmt.pf ppf " {%s}"
      (String.concat ", "
         (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) attrs))

(* Indented tree, one span per line.  [show_wall:false] drops durations
   (the only nondeterministic column), keeping ids, names and attrs —
   deterministic golden output. *)
let render ?(show_wall = true) (s : t) : string =
  let b = Buffer.create 256 in
  iter
    (fun ~depth sp ->
       let pad = String.make (2 * depth) ' ' in
       if show_wall then
         Buffer.add_string b
           (Fmt.str "[%2d] %s%s%a %.3fms\n" sp.id pad sp.name pp_attrs
              sp.attrs
              (Float.max 0. sp.dur_s *. 1000.))
       else
         Buffer.add_string b
           (Fmt.str "[%2d] %s%s%a\n" sp.id pad sp.name pp_attrs sp.attrs))
    s;
  Buffer.contents b

(* One JSON object per span, line-delimited, emitted in pre-order.
   Timestamps are microseconds relative to the ROOT span's start, so
   logs from one query are self-contained.  [show_wall:false] drops
   [start_us]/[dur_us] for deterministic goldens. *)
let to_json_lines ?(show_wall = true) (s : t) : string =
  let b = Buffer.create 512 in
  let epoch = s.start_s in
  iter
    (fun ~depth sp ->
       Buffer.add_string b
         (Printf.sprintf {|{"id":%d,"parent":%d,"depth":%d,"name":%s|}
            sp.id sp.parent_id depth
            ("\"" ^ Trace.json_escape sp.name ^ "\""));
       if show_wall then
         Buffer.add_string b
           (Printf.sprintf {|,"start_us":%.0f,"dur_us":%.0f|}
              (Float.max 0. (sp.start_s -. epoch) *. 1e6)
              (Float.max 0. sp.dur_s *. 1e6));
       (match sp.attrs with
        | [] -> ()
        | attrs ->
          Buffer.add_string b ",\"attrs\":{";
          List.iteri
            (fun i (k, v) ->
               if i > 0 then Buffer.add_char b ',';
               Buffer.add_string b
                 (Printf.sprintf "%s:%s"
                    ("\"" ^ Trace.json_escape k ^ "\"")
                    ("\"" ^ Trace.json_escape v ^ "\"")))
            attrs;
          Buffer.add_char b '}');
       Buffer.add_string b "}\n")
    s;
  Buffer.contents b
