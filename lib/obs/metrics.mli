(** Process-wide metrics registry: monotonic counters and max-gauges,
    keyed by name.  Long-lived drivers (CLI, fuzzer, benches) use it to
    report process totals without threading state through every layer. *)

(** Increment a counter (created at zero on first use).
    @raise Invalid_argument if [name] is already a gauge. *)
val incr : ?by:int -> string -> unit

(** Raise a max-gauge to [v] if [v] exceeds its current value.
    @raise Invalid_argument if [name] is already a counter. *)
val observe_max : string -> float -> unit

(** Current value, if the metric exists (counters as floats). *)
val get : string -> float option

(** Drop every metric (tests). *)
val reset : unit -> unit

(** Sorted [(name, rendered value)] pairs. *)
val dump : unit -> (string * string) list

(** One ["name value"] line per metric, sorted by name. *)
val render : unit -> string

(** {2 Canonical metric names} *)

val queries_run : string
val blocks_planned : string
val fuzz_oracle_pass : string
val fuzz_oracle_fail : string
val qerror_max : string

val feedback_overrides : string
val feedback_recorded : string
val sketches_built : string
