(** Process-wide metrics registry: monotonic counters, max-gauges and
    log-bucketed (power-of-two) histograms, keyed by name.  Long-lived
    drivers (CLI, fuzzer, benches) use it to report process totals
    without threading state through every layer.

    Names may carry Prometheus-style labels inline
    (["stage_seconds{stage=\"optimize\"}"]); the registry treats the
    whole string as the key and only {!Prometheus} splits it. *)

(** Increment a counter (created at zero on first use).
    @raise Invalid_argument if [name] exists with another type. *)
val incr : ?by:int -> string -> unit

(** Raise a max-gauge to [v] if [v] exceeds its current value.
    @raise Invalid_argument if [name] exists with another type. *)
val observe_max : string -> float -> unit

(** Record one observation into a histogram (created empty on first
    use).  Buckets are powers of two — the smallest [2^e >= v] — so
    percentile reads are within 2x over an unbounded range.
    Non-positive and non-finite values clamp to the extreme buckets.
    @raise Invalid_argument if [name] exists with another type. *)
val observe_hist : string -> float -> unit

(** Immutable histogram view: total count, sum, and (upper bound,
    cumulative count) pairs sorted by bound — the last cumulative count
    equals [count]. *)
type hist_snapshot = {
  count : int;
  sum : float;
  buckets : (float * int) list;
}

(** Typed cell value, as {!dump_cells} reports it. *)
type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of hist_snapshot

(** Percentile estimate ([p] in [0,1]) from bucket upper bounds; within
    2x of the true order statistic, monotone in [p].  [None] on an empty
    histogram. *)
val percentile : hist_snapshot -> float -> float option

(** Current value, if the metric exists (counters as floats; histograms
    report their observation count).  Prefer {!dump_cells} for typed
    reads. *)
val get : string -> float option

(** Every cell with its typed value, sorted by name.  Read-only: never
    creates or retypes a cell, so renderers built on it cannot raise. *)
val dump_cells : unit -> (string * value) list

(** Histogram snapshot by exact name, if it exists as a histogram. *)
val find_hist : string -> hist_snapshot option

(** Drop every metric (tests). *)
val reset : unit -> unit

(** Sorted [(name, rendered value)] pairs; histograms render as
    [count/sum/p50/p95/p99]. *)
val dump : unit -> (string * string) list

(** One ["name value"] line per metric, sorted by name. *)
val render : unit -> string

(** {2 Canonical metric names} *)

val queries_run : string
val blocks_planned : string
val fuzz_oracle_pass : string
val fuzz_oracle_fail : string
val qerror_max : string

val feedback_overrides : string
val feedback_recorded : string
val sketches_built : string

(** {2 Canonical histogram names} *)

val query_seconds : string
(** end-to-end query latency, seconds *)

val qerror_hist : string
(** per-query worst q-error distribution *)

val digest_seconds : string
(** time to compute the plan-cache-ready query/plan digests *)

val fuzz_case_seconds : string
(** differential-fuzz case latency *)

(** [stage_seconds "optimize"] = ["stage_seconds{stage=\"optimize\"}"] —
    per-stage latency histogram name for the span stages. *)
val stage_seconds : string -> string
