(** EXPLAIN ANALYZE rendering: annotated plan tree with
    estimated-vs-actual cardinalities, q-error, rescans and exclusive
    counter deltas per operator, plus a per-plan max-q-error summary. *)

(** [q_error ~est ~act] = [max (est/act) (act/est)]; both zero -> [1.],
    exactly one zero -> [infinity]. *)
val q_error : est:float -> act:float -> float

(** q-error of one operator; [None] if it never executed or has no
    estimate. *)
val op_q_error : Exec.Instrument.op -> float option

(** Worst q-error among executed operators with estimates. *)
val max_q_error : Exec.Instrument.t -> (float * Exec.Instrument.op) option

(** Indented per-operator tree, one line per operator, ending with the
    max-q-error summary line.  [show_wall:false] omits wall-clock times
    (deterministic output for golden tests). *)
val render : ?show_wall:bool -> Exec.Instrument.t -> string
