(* Prometheus text exposition (format 0.0.4) over the metrics registry.

   Counters and max-gauges render as single samples; histograms render
   the standard triple: cumulative `_bucket{le="..."}` series ending in
   `le="+Inf"`, plus `_sum` and `_count`.

   Registry keys may embed labels (`stage_seconds{stage="optimize"}`);
   the base name and label body are split here and the `le` label is
   appended to any existing labels.  Built exclusively on
   [Metrics.dump_cells] — a read-only, typed accessor — so rendering can
   never raise on name collisions, whatever the registry holds. *)

let prefix = "qopt_"

(* Metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; anything else
   becomes '_'.  Label values keep their text (escaped). *)
let sanitize_name (s : string) : string =
  String.mapi
    (fun i c ->
       match c with
       | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> c
       | '0' .. '9' when i > 0 -> c
       | _ -> '_')
    s

let escape_label_value (s : string) : string =
  let b = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
       match c with
       | '\\' -> Buffer.add_string b "\\\\"
       | '"' -> Buffer.add_string b "\\\""
       | '\n' -> Buffer.add_string b "\\n"
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* "stage_seconds{stage=\"optimize\"}" -> ("stage_seconds",
   Some "stage=\"optimize\"").  Keys without '{' have no labels. *)
let split_labels (key : string) : string * string option =
  match String.index_opt key '{' with
  | None -> (sanitize_name key, None)
  | Some i ->
    let base = String.sub key 0 i in
    let rest = String.sub key (i + 1) (String.length key - i - 1) in
    let body =
      match String.rindex_opt rest '}' with
      | Some j -> String.sub rest 0 j
      | None -> rest
    in
    (sanitize_name base, if body = "" then None else Some body)

let labelset = function
  | None -> ""
  | Some body -> "{" ^ body ^ "}"

let with_le labels le =
  let le_s = Printf.sprintf "le=\"%s\"" (escape_label_value le) in
  match labels with
  | None -> "{" ^ le_s ^ "}"
  | Some body -> "{" ^ body ^ "," ^ le_s ^ "}"

let fnum (v : float) : string =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

(* "le" bound formatting: Prometheus convention uses decimal text; any
   stable spelling works as long as buckets sort consistently. *)
let fle (v : float) : string =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let render_cells (cells : (string * Metrics.value) list) : string =
  let b = Buffer.create 1024 in
  (* group cells by base metric name so # TYPE appears once per family
     even when several label sets share it, as Prometheus requires *)
  let seen_type : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let header name ty =
    if not (Hashtbl.mem seen_type name) then begin
      Hashtbl.replace seen_type name ();
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name ty)
    end
  in
  List.iter
    (fun (key, v) ->
       let base, labels = split_labels key in
       match v with
       | Metrics.Counter_v n ->
         let name = prefix ^ base ^ "_total" in
         header name "counter";
         Buffer.add_string b
           (Printf.sprintf "%s%s %d\n" name (labelset labels) n)
       | Metrics.Gauge_v g ->
         let name = prefix ^ base in
         header name "gauge";
         Buffer.add_string b
           (Printf.sprintf "%s%s %s\n" name (labelset labels) (fnum g))
       | Metrics.Histogram_v s ->
         let name = prefix ^ base in
         header name "histogram";
         List.iter
           (fun (ub, cum) ->
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" name
                   (with_le labels (fle ub))
                   cum))
           s.Metrics.buckets;
         Buffer.add_string b
           (Printf.sprintf "%s_bucket%s %d\n" name (with_le labels "+Inf")
              s.Metrics.count);
         Buffer.add_string b
           (Printf.sprintf "%s_sum%s %s\n" name (labelset labels)
              (fnum s.Metrics.sum));
         Buffer.add_string b
           (Printf.sprintf "%s_count%s %d\n" name (labelset labels)
              s.Metrics.count))
    cells;
  Buffer.contents b

let render () : string = render_cells (Metrics.dump_cells ())

let write_file (path : string) : unit =
  let oc = open_out path in
  output_string oc (render ());
  close_out oc
