(* Minimal JSON validator (RFC 8259 subset, no dependency).

   The trace writer hand-builds its JSON, so tests and the CI checker
   need an independent reader to certify the output is well-formed.
   Validation only — nothing in the tree consumes parsed JSON values, so
   no AST is built. *)

type pos = { s : string; mutable i : int }

exception Bad of string * int

let fail p msg = raise (Bad (msg, p.i))

let peek p = if p.i < String.length p.s then Some p.s.[p.i] else None

let advance p = p.i <- p.i + 1

let skip_ws p =
  while
    match peek p with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance p;
      true
    | _ -> false
  do
    ()
  done

let expect p c =
  match peek p with
  | Some c' when c' = c -> advance p
  | _ -> fail p (Printf.sprintf "expected '%c'" c)

let literal p lit =
  String.iter (fun c -> expect p c) lit

let hex_digit = function
  | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
  | _ -> false

let string_body p =
  expect p '"';
  let rec go () =
    match peek p with
    | None -> fail p "unterminated string"
    | Some '"' -> advance p
    | Some '\\' ->
      advance p;
      (match peek p with
       | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
         advance p;
         go ()
       | Some 'u' ->
         advance p;
         for _ = 1 to 4 do
           match peek p with
           | Some c when hex_digit c -> advance p
           | _ -> fail p "bad \\u escape"
         done;
         go ()
       | _ -> fail p "bad escape")
    | Some c when Char.code c < 0x20 -> fail p "control char in string"
    | Some _ ->
      advance p;
      go ()
  in
  go ()

let digits p =
  let n = ref 0 in
  while (match peek p with Some '0' .. '9' -> true | _ -> false) do
    advance p;
    incr n
  done;
  if !n = 0 then fail p "expected digit"

let number p =
  (match peek p with Some '-' -> advance p | _ -> ());
  (match peek p with
   | Some '0' -> advance p
   | Some '1' .. '9' -> digits p
   | _ -> fail p "expected number");
  (match peek p with
   | Some '.' ->
     advance p;
     digits p
   | _ -> ());
  match peek p with
  | Some ('e' | 'E') ->
    advance p;
    (match peek p with Some ('+' | '-') -> advance p | _ -> ());
    digits p
  | _ -> ()

let rec value p =
  skip_ws p;
  match peek p with
  | Some '"' -> string_body p
  | Some '{' ->
    advance p;
    skip_ws p;
    (match peek p with
     | Some '}' -> advance p
     | _ ->
       let rec members () =
         skip_ws p;
         string_body p;
         skip_ws p;
         expect p ':';
         value p;
         skip_ws p;
         match peek p with
         | Some ',' ->
           advance p;
           members ()
         | Some '}' -> advance p
         | _ -> fail p "expected ',' or '}'"
       in
       members ())
  | Some '[' ->
    advance p;
    skip_ws p;
    (match peek p with
     | Some ']' -> advance p
     | _ ->
       let rec elements () =
         value p;
         skip_ws p;
         match peek p with
         | Some ',' ->
           advance p;
           elements ()
         | Some ']' -> advance p
         | _ -> fail p "expected ',' or ']'"
       in
       elements ())
  | Some 't' -> literal p "true"
  | Some 'f' -> literal p "false"
  | Some 'n' -> literal p "null"
  | Some ('-' | '0' .. '9') -> number p
  | _ -> fail p "expected value"

let validate (s : string) : (unit, string) result =
  let p = { s; i = 0 } in
  match
    value p;
    skip_ws p;
    if p.i <> String.length s then fail p "trailing garbage"
  with
  | () -> Ok ()
  | exception Bad (msg, i) -> Error (Printf.sprintf "%s at offset %d" msg i)

(* Line-delimited JSON: every non-empty line must be a standalone value. *)
let validate_lines (s : string) : (unit, string) result =
  let lines = String.split_on_char '\n' s in
  let rec go n = function
    | [] -> Ok ()
    | line :: rest ->
      if String.trim line = "" then go (n + 1) rest
      else (
        match validate line with
        | Ok () -> go (n + 1) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" n e))
  in
  go 1 lines
