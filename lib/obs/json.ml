(* Minimal JSON validator (RFC 8259 subset, no dependency).

   The trace writer hand-builds its JSON, so tests and the CI checker
   need an independent reader to certify the output is well-formed.
   Validation only — nothing in the tree consumes parsed JSON values, so
   no AST is built. *)

type pos = { s : string; mutable i : int }

exception Bad of string * int

let fail p msg = raise (Bad (msg, p.i))

let peek p = if p.i < String.length p.s then Some p.s.[p.i] else None

let advance p = p.i <- p.i + 1

let skip_ws p =
  while
    match peek p with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance p;
      true
    | _ -> false
  do
    ()
  done

let expect p c =
  match peek p with
  | Some c' when c' = c -> advance p
  | _ -> fail p (Printf.sprintf "expected '%c'" c)

let literal p lit =
  String.iter (fun c -> expect p c) lit

let hex_digit = function
  | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
  | _ -> false

let string_body p =
  expect p '"';
  let rec go () =
    match peek p with
    | None -> fail p "unterminated string"
    | Some '"' -> advance p
    | Some '\\' ->
      advance p;
      (match peek p with
       | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
         advance p;
         go ()
       | Some 'u' ->
         advance p;
         for _ = 1 to 4 do
           match peek p with
           | Some c when hex_digit c -> advance p
           | _ -> fail p "bad \\u escape"
         done;
         go ()
       | _ -> fail p "bad escape")
    | Some c when Char.code c < 0x20 -> fail p "control char in string"
    | Some _ ->
      advance p;
      go ()
  in
  go ()

let digits p =
  let n = ref 0 in
  while (match peek p with Some '0' .. '9' -> true | _ -> false) do
    advance p;
    incr n
  done;
  if !n = 0 then fail p "expected digit"

let number p =
  (match peek p with Some '-' -> advance p | _ -> ());
  (match peek p with
   | Some '0' -> advance p
   | Some '1' .. '9' -> digits p
   | _ -> fail p "expected number");
  (match peek p with
   | Some '.' ->
     advance p;
     digits p
   | _ -> ());
  match peek p with
  | Some ('e' | 'E') ->
    advance p;
    (match peek p with Some ('+' | '-') -> advance p | _ -> ());
    digits p
  | _ -> ()

let rec value p =
  skip_ws p;
  match peek p with
  | Some '"' -> string_body p
  | Some '{' ->
    advance p;
    skip_ws p;
    (match peek p with
     | Some '}' -> advance p
     | _ ->
       let rec members () =
         skip_ws p;
         string_body p;
         skip_ws p;
         expect p ':';
         value p;
         skip_ws p;
         match peek p with
         | Some ',' ->
           advance p;
           members ()
         | Some '}' -> advance p
         | _ -> fail p "expected ',' or '}'"
       in
       members ())
  | Some '[' ->
    advance p;
    skip_ws p;
    (match peek p with
     | Some ']' -> advance p
     | _ ->
       let rec elements () =
         value p;
         skip_ws p;
         match peek p with
         | Some ',' ->
           advance p;
           elements ()
         | Some ']' -> advance p
         | _ -> fail p "expected ',' or ']'"
       in
       elements ())
  | Some 't' -> literal p "true"
  | Some 'f' -> literal p "false"
  | Some 'n' -> literal p "null"
  | Some ('-' | '0' .. '9') -> number p
  | _ -> fail p "expected value"

let validate (s : string) : (unit, string) result =
  let p = { s; i = 0 } in
  match
    value p;
    skip_ws p;
    if p.i <> String.length s then fail p "trailing garbage"
  with
  | () -> Ok ()
  | exception Bad (msg, i) -> Error (Printf.sprintf "%s at offset %d" msg i)

(* ------------------------------------------------------------------ *)
(* Parsing: the same grammar, building a value tree.  Only the query-log
   reader and tests consume parsed values; the hot emission paths never
   touch this allocation. *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list

(* Decode a string body (opening quote consumed by caller checks), with
   escapes resolved; \uXXXX below 0x80 decodes to the byte, other
   codepoints to UTF-8. *)
let parse_string p : string =
  expect p '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek p with
    | None -> fail p "unterminated string"
    | Some '"' -> advance p
    | Some '\\' ->
      advance p;
      (match peek p with
       | Some '"' -> advance p; Buffer.add_char b '"'; go ()
       | Some '\\' -> advance p; Buffer.add_char b '\\'; go ()
       | Some '/' -> advance p; Buffer.add_char b '/'; go ()
       | Some 'b' -> advance p; Buffer.add_char b '\b'; go ()
       | Some 'f' -> advance p; Buffer.add_char b '\012'; go ()
       | Some 'n' -> advance p; Buffer.add_char b '\n'; go ()
       | Some 'r' -> advance p; Buffer.add_char b '\r'; go ()
       | Some 't' -> advance p; Buffer.add_char b '\t'; go ()
       | Some 'u' ->
         advance p;
         let code = ref 0 in
         for _ = 1 to 4 do
           match peek p with
           | Some c when hex_digit c ->
             advance p;
             let d =
               match c with
               | '0' .. '9' -> Char.code c - Char.code '0'
               | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
               | _ -> Char.code c - Char.code 'A' + 10
             in
             code := (!code * 16) + d
           | _ -> fail p "bad \\u escape"
         done;
         let u = !code in
         if u < 0x80 then Buffer.add_char b (Char.chr u)
         else if u < 0x800 then begin
           Buffer.add_char b (Char.chr (0xc0 lor (u lsr 6)));
           Buffer.add_char b (Char.chr (0x80 lor (u land 0x3f)))
         end
         else begin
           Buffer.add_char b (Char.chr (0xe0 lor (u lsr 12)));
           Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
           Buffer.add_char b (Char.chr (0x80 lor (u land 0x3f)))
         end;
         go ()
       | _ -> fail p "bad escape")
    | Some c when Char.code c < 0x20 -> fail p "control char in string"
    | Some c ->
      advance p;
      Buffer.add_char b c;
      go ()
  in
  go ();
  Buffer.contents b

let rec parse_value p : value =
  skip_ws p;
  match peek p with
  | Some '"' -> Str (parse_string p)
  | Some '{' ->
    advance p;
    skip_ws p;
    (match peek p with
     | Some '}' ->
       advance p;
       Obj []
     | _ ->
       let rec members acc =
         skip_ws p;
         let k = parse_string p in
         skip_ws p;
         expect p ':';
         let v = parse_value p in
         skip_ws p;
         match peek p with
         | Some ',' ->
           advance p;
           members ((k, v) :: acc)
         | Some '}' ->
           advance p;
           List.rev ((k, v) :: acc)
         | _ -> fail p "expected ',' or '}'"
       in
       Obj (members []))
  | Some '[' ->
    advance p;
    skip_ws p;
    (match peek p with
     | Some ']' ->
       advance p;
       Arr []
     | _ ->
       let rec elements acc =
         let v = parse_value p in
         skip_ws p;
         match peek p with
         | Some ',' ->
           advance p;
           elements (v :: acc)
         | Some ']' ->
           advance p;
           List.rev (v :: acc)
         | _ -> fail p "expected ',' or ']'"
       in
       Arr (elements []))
  | Some 't' ->
    literal p "true";
    Bool true
  | Some 'f' ->
    literal p "false";
    Bool false
  | Some 'n' ->
    literal p "null";
    Null
  | Some ('-' | '0' .. '9') ->
    let start = p.i in
    number p;
    Num (float_of_string (String.sub p.s start (p.i - start)))
  | _ -> fail p "expected value"

let parse (s : string) : (value, string) result =
  let p = { s; i = 0 } in
  match
    let v = parse_value p in
    skip_ws p;
    if p.i <> String.length s then fail p "trailing garbage" else v
  with
  | v -> Ok v
  | exception Bad (msg, i) -> Error (Printf.sprintf "%s at offset %d" msg i)

(* Object-member lookup (first match; our emitters never repeat keys). *)
let member (k : string) (v : value) : value option =
  match v with Obj kvs -> List.assoc_opt k kvs | _ -> None

(* Line-delimited JSON: every non-empty line must be a standalone value. *)
let validate_lines (s : string) : (unit, string) result =
  let lines = String.split_on_char '\n' s in
  let rec go n = function
    | [] -> Ok ()
    | line :: rest ->
      if String.trim line = "" then go (n + 1) rest
      else (
        match validate line with
        | Ok () -> go (n + 1) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" n e))
  in
  go 1 lines
