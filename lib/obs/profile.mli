(** Chrome trace-event export (Perfetto / chrome://tracing loadable):
    the query's span tree on thread 0 and each morsel worker's task
    timeline on thread [w + 1], as one JSON object with complete events
    ("ph":"X", microsecond timestamps relative to the profile's earliest
    point on the shared monotonic clock).

    [recorders] pairs a display label (e.g. ["block 1"]) with each
    executed block's instrument recorder; their {!Exec.Instrument.timeline}
    tasks become the worker rows.  Sequential executions have empty
    timelines — the profile then holds just the span tree. *)

val render : ?span:Span.t -> (string * Exec.Instrument.t) list -> string

val write_file :
  ?span:Span.t -> (string * Exec.Instrument.t) list -> string -> unit
