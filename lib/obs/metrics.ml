(* Process-wide metrics registry: monotonic counters, max-gauges and
   log-bucketed histograms, keyed by name.  Deliberately small — the
   registry exists so long-lived drivers (CLI, fuzzer, benches, the
   future service layer) can report "what has this process done" without
   threading state through every layer.

   Names may carry Prometheus-style labels inline —
   ["stage_seconds{stage=\"optimize\"}"] — which the registry treats as
   opaque key text; only the Prometheus renderer splits them.

   Histograms bucket by powers of two: an observation [v] lands in the
   bucket with the smallest upper bound [2^e >= v].  Log buckets give a
   bounded relative error (any percentile read from bucket bounds is
   within 2x of the true order statistic) over an unbounded range with a
   handful of live buckets — the standard trick for latency and q-error
   distributions, which span many decades. *)

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  h_buckets : (int, int ref) Hashtbl.t; (* exponent e -> count; ub = 2^e *)
}

type cell = Counter of int ref | Max_gauge of float ref | Histogram of hist

let registry : (string, cell) Hashtbl.t = Hashtbl.create 16

let counter name =
  match Hashtbl.find_opt registry name with
  | Some (Counter r) -> r
  | Some _ -> invalid_arg ("Metrics: " ^ name ^ " is not a counter")
  | None ->
    let r = ref 0 in
    Hashtbl.replace registry name (Counter r);
    r

let incr ?(by = 1) name =
  let r = counter name in
  r := !r + by

let observe_max name v =
  match Hashtbl.find_opt registry name with
  | Some (Max_gauge r) -> if v > !r then r := v
  | Some _ -> invalid_arg ("Metrics: " ^ name ^ " is not a gauge")
  | None -> Hashtbl.replace registry name (Max_gauge (ref v))

(* Exponent of the power-of-two bucket containing [v]: the smallest [e]
   with [v <= 2^e].  Non-positive and non-finite observations clamp to
   the extreme buckets.  [frexp v = (m, e)] has [v = m * 2^e] with
   [0.5 <= m < 1], so [v <= 2^e] and, except at exact powers of two
   (m = 0.5, which belong one bucket down), [v > 2^(e-1)]. *)
let min_exp = -40 (* 2^-40 s ~ 1 ps: smaller observations merge here *)

let max_exp = 62

let bucket_exp (v : float) : int =
  if not (Float.is_finite v) || v > 4.611686018427387904e18 then max_exp
  else if v <= 0. then min_exp
  else
    let m, e = Float.frexp v in
    let e = if m = 0.5 then e - 1 else e in
    if e < min_exp then min_exp else if e > max_exp then max_exp else e

let observe_hist name v =
  let h =
    match Hashtbl.find_opt registry name with
    | Some (Histogram h) -> h
    | Some _ -> invalid_arg ("Metrics: " ^ name ^ " is not a histogram")
    | None ->
      let h = { h_count = 0; h_sum = 0.; h_buckets = Hashtbl.create 8 } in
      Hashtbl.replace registry name (Histogram h);
      h
  in
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  let e = bucket_exp v in
  match Hashtbl.find_opt h.h_buckets e with
  | Some r -> Stdlib.incr r
  | None -> Hashtbl.replace h.h_buckets e (ref 1)

(* ------------------------------------------------------------------ *)
(* Snapshots: immutable views for renderers and tests.  Reading never
   creates or retypes a cell, so render paths cannot raise. *)

type hist_snapshot = {
  count : int;
  sum : float;
  buckets : (float * int) list;
      (* (upper bound, CUMULATIVE count <= bound), sorted by bound;
         the last entry's count equals [count] *)
}

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of hist_snapshot

let snapshot_hist (h : hist) : hist_snapshot =
  let exps =
    Hashtbl.fold (fun e r acc -> (e, !r) :: acc) h.h_buckets []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let cum = ref 0 in
  let buckets =
    List.map
      (fun (e, n) ->
         cum := !cum + n;
         (Float.ldexp 1. e, !cum))
      exps
  in
  { count = h.h_count; sum = h.h_sum; buckets }

(* Percentile estimate from bucket bounds: the upper bound of the first
   bucket whose cumulative count reaches rank [ceil(p * count)].  Within
   2x of the true order statistic by construction of the buckets; exact
   enough for p50/p95/p99 summaries.  Monotone in [p]. *)
let percentile (s : hist_snapshot) (p : float) : float option =
  if s.count = 0 then None
  else begin
    let p = Float.max 0. (Float.min 1. p) in
    let rank = max 1 (int_of_float (Float.ceil (p *. float_of_int s.count))) in
    let rec go = function
      | [] -> None (* unreachable: last cumulative count = s.count *)
      | (ub, cum) :: rest -> if cum >= rank then Some ub else go rest
    in
    go s.buckets
  end

let get name =
  match Hashtbl.find_opt registry name with
  | Some (Counter r) -> Some (float_of_int !r)
  | Some (Max_gauge r) -> Some !r
  | Some (Histogram h) -> Some (float_of_int h.h_count)
  | None -> None

(* Typed read of every cell, sorted by name.  This — not [get] — is the
   renderer-facing accessor: it distinguishes counters from gauges from
   histograms and can never raise, whatever names exist. *)
let dump_cells () : (string * value) list =
  Hashtbl.fold (fun name cell acc -> (name, cell) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (name, cell) ->
      match cell with
      | Counter r -> (name, Counter_v !r)
      | Max_gauge r -> (name, Gauge_v !r)
      | Histogram h -> (name, Histogram_v (snapshot_hist h)))

let find_hist name : hist_snapshot option =
  match Hashtbl.find_opt registry name with
  | Some (Histogram h) -> Some (snapshot_hist h)
  | _ -> None

let reset () = Hashtbl.reset registry

let dump () =
  List.map
    (fun (name, v) ->
       match v with
       | Counter_v n -> (name, string_of_int n)
       | Gauge_v g -> (name, Printf.sprintf "%.4g" g)
       | Histogram_v s ->
         let pct p =
           match percentile s p with
           | Some v -> Printf.sprintf "%.4g" v
           | None -> "-"
         in
         ( name,
           Printf.sprintf "count=%d sum=%.4g p50=%s p95=%s p99=%s" s.count
             s.sum (pct 0.50) (pct 0.95) (pct 0.99) ))
    (dump_cells ())

let render () =
  dump ()
  |> List.map (fun (k, v) -> Printf.sprintf "%-40s %s" k v)
  |> String.concat "\n"

(* Canonical metric names, so emitters and readers agree on spelling. *)
let queries_run = "queries_run"
let blocks_planned = "blocks_planned"
let fuzz_oracle_pass = "fuzz_oracle_pass"
let fuzz_oracle_fail = "fuzz_oracle_fail"
let qerror_max = "qerror_max"
let feedback_overrides = "feedback_overrides"
let feedback_recorded = "feedback_recorded"
let sketches_built = "sketches_built"

(* Histograms *)
let query_seconds = "query_seconds"
let qerror_hist = "qerror"
let digest_seconds = "plan_digest_seconds"
let fuzz_case_seconds = "fuzz_case_seconds"

let stage_seconds (stage : string) =
  Printf.sprintf "stage_seconds{stage=%S}" stage
