(* Process-wide metrics registry: monotonic counters and max-gauges,
   keyed by name.  Deliberately tiny — the registry exists so long-lived
   drivers (CLI, fuzzer, benches) can report "what has this process done"
   without threading state through every layer. *)

type cell = Counter of int ref | Max_gauge of float ref

let registry : (string, cell) Hashtbl.t = Hashtbl.create 16

let counter name =
  match Hashtbl.find_opt registry name with
  | Some (Counter r) -> r
  | Some (Max_gauge _) -> invalid_arg ("Metrics: " ^ name ^ " is a gauge")
  | None ->
    let r = ref 0 in
    Hashtbl.replace registry name (Counter r);
    r

let incr ?(by = 1) name =
  let r = counter name in
  r := !r + by

let observe_max name v =
  match Hashtbl.find_opt registry name with
  | Some (Max_gauge r) -> if v > !r then r := v
  | Some (Counter _) -> invalid_arg ("Metrics: " ^ name ^ " is a counter")
  | None -> Hashtbl.replace registry name (Max_gauge (ref v))

let get name =
  match Hashtbl.find_opt registry name with
  | Some (Counter r) -> Some (float_of_int !r)
  | Some (Max_gauge r) -> Some !r
  | None -> None

let reset () = Hashtbl.reset registry

let dump () =
  Hashtbl.fold (fun name cell acc -> (name, cell) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (name, cell) ->
      match cell with
      | Counter r -> (name, string_of_int !r)
      | Max_gauge r -> (name, Printf.sprintf "%.4g" !r))

let render () =
  dump ()
  |> List.map (fun (k, v) -> Printf.sprintf "%-24s %s" k v)
  |> String.concat "\n"

(* Canonical metric names, so emitters and readers agree on spelling. *)
let queries_run = "queries_run"
let blocks_planned = "blocks_planned"
let fuzz_oracle_pass = "fuzz_oracle_pass"
let fuzz_oracle_fail = "fuzz_oracle_fail"
let qerror_max = "qerror_max"
let feedback_overrides = "feedback_overrides"
let feedback_recorded = "feedback_recorded"
let sketches_built = "sketches_built"
