(* EXPLAIN ANALYZE rendering: the annotated plan tree with estimated vs
   actual cardinalities, q-error, rescans and exclusive counter deltas
   per operator, plus a per-plan max-q-error summary. *)

module I = Exec.Instrument

(* q-error, the standard multiplicative estimation-error metric:
   max(est/act, act/est).  Both zero -> 1 (a correct zero estimate);
   exactly one zero -> infinite (the unbounded-error case — Chaudhuri's
   "provably error-prone" distinct estimates land here). *)
let q_error ~est ~act =
  if est <= 0. && act <= 0. then 1.0
  else if est <= 0. || act <= 0. then infinity
  else Float.max (est /. act) (act /. est)

let op_q_error (o : I.op) : float option =
  if not o.I.executed then None
  else
    match o.I.est_rows with
    | None -> None
    | Some est -> Some (q_error ~est ~act:(float_of_int o.I.act_rows))

(* Worst estimate among operators that actually executed. *)
let max_q_error (r : I.t) : (float * I.op) option =
  List.fold_left
    (fun acc o ->
       match op_q_error o with
       | None -> acc
       | Some q -> (
         match acc with
         | Some (best, _) when best >= q -> acc
         | _ -> Some (q, o)))
    None (I.ops r)

let pp_q ppf q =
  if Float.is_finite q then Fmt.pf ppf "%.2f" q else Fmt.string ppf "inf"

let pp_est ppf = function
  | None -> Fmt.string ppf "?"
  | Some e -> Fmt.pf ppf "%.1f" e

let op_line ~show_wall depth (o : I.op) : string =
  let pad = String.make (2 * depth) ' ' in
  let s = o.I.self in
  let head =
    Fmt.str "[%2d] %s%s" o.I.id pad (Exec.Plan.describe o.I.node)
  in
  let metrics =
    if not o.I.executed then "never executed"
    else
      Fmt.str "est=%a act=%d q=%a rescans=%d %a%s" pp_est o.I.est_rows
        o.I.act_rows
        Fmt.(option ~none:(any "?") pp_q)
        (op_q_error o) o.I.rescans Exec.Context.pp_snapshot s
        (if show_wall then Fmt.str " wall=%.3fms" (o.I.wall_s *. 1000.)
         else "")
  in
  Fmt.str "%-52s  %s" head metrics

(* Per-worker actuals of a morsel-parallel operator.  Which worker got
   which morsel is scheduling-dependent, so this line — like wall-clock —
   only appears under [show_wall]. *)
let par_line depth (p : I.par) : string =
  let pad = String.make (2 * depth) ' ' in
  Fmt.str "     %s  par: dop=%d rows=[%s] busy=[%s]ms" pad p.I.par_dop
    (String.concat " "
       (Array.to_list (Array.map string_of_int p.I.worker_rows)))
    (String.concat " "
       (Array.to_list
          (Array.map (fun w -> Fmt.str "%.3f" (w *. 1000.)) p.I.worker_wall)))

(* Render the recorder's plan as an indented tree, one operator per
   line.  [show_wall:false] drops wall-clock times (golden tests). *)
let render ?(show_wall = true) (r : I.t) : string =
  let b = Buffer.create 512 in
  let rec walk depth (p : Exec.Plan.t) =
    (match I.lookup r p with
     | None -> ()
     | Some o ->
       Buffer.add_string b (op_line ~show_wall depth o);
       Buffer.add_char b '\n';
       match o.I.par with
       | Some pr when show_wall ->
         Buffer.add_string b (par_line depth pr);
         Buffer.add_char b '\n'
       | _ -> ());
    List.iter (walk (depth + 1)) (Exec.Plan.children p)
  in
  (match I.ops r with
   | [] -> ()
   | root :: _ -> walk 0 root.I.node);
  (match max_q_error r with
   | None -> ()
   | Some (q, o) ->
     Buffer.add_string b
       (Fmt.str "max q-error: %a at op %d (%s)\n" pp_q q o.I.id
          (Exec.Plan.describe o.I.node)));
  Buffer.contents b
