(* Structured query log: one JSON object per executed query, appended
   as NDJSON.  Each record fingerprints the query and chosen plan,
   carries per-stage latencies from the span tree, and closes the
   estimation loop with est/act row counts and feedback-cache traffic —
   enough to find regressions ("same query digest, new plan digest,
   slower") by grepping the log. *)

type t = {
  ts_us : int;  (** wall-clock Unix epoch, microseconds, at log time *)
  query_digest : string;  (** {!Trace.digest} of the bound query text *)
  plan_digest : string;  (** digest of the chosen physical plan *)
  estimator : string;
  engine : string;
  dop : int;
  rows : int;  (** result rows returned *)
  total_us : float;
  stages : (string * float) list;  (** stage name, duration in µs *)
  est_rows : float option;
  act_rows : float option;
  max_qerror : float option;
  feedback_hits : int;
  feedback_misses : int;
}

let jstr = Trace.jstr
let jfloat = Trace.jfloat
let jopt = function None -> "null" | Some v -> jfloat v

let to_json (r : t) : string =
  let b = Buffer.create 256 in
  Buffer.add_char b '{';
  let field ?(first = false) k v =
    if not first then Buffer.add_char b ',';
    Buffer.add_string b (jstr k);
    Buffer.add_char b ':';
    Buffer.add_string b v
  in
  field ~first:true "ts_us" (string_of_int r.ts_us);
  field "query_digest" (jstr r.query_digest);
  field "plan_digest" (jstr r.plan_digest);
  field "estimator" (jstr r.estimator);
  field "engine" (jstr r.engine);
  field "dop" (string_of_int r.dop);
  field "rows" (string_of_int r.rows);
  field "total_us" (jfloat r.total_us);
  field "stages"
    ("{"
    ^ String.concat ","
        (List.map (fun (k, v) -> jstr k ^ ":" ^ jfloat v) r.stages)
    ^ "}");
  field "est_rows" (jopt r.est_rows);
  field "act_rows" (jopt r.act_rows);
  field "max_qerror" (jopt r.max_qerror);
  field "feedback_hits" (string_of_int r.feedback_hits);
  field "feedback_misses" (string_of_int r.feedback_misses);
  Buffer.add_char b '}';
  Buffer.contents b

let num = function Json.Num f -> Some f | _ -> None
let str = function Json.Str s -> Some s | _ -> None

let get conv k v =
  match Json.member k v with Some x -> conv x | None -> None

let get_num_opt k v =
  (* absent and [null] both mean "not recorded" *)
  match Json.member k v with Some (Json.Num f) -> Some f | _ -> None

let of_json (line : string) : (t, string) result =
  match Json.parse line with
  | Error e -> Error e
  | Ok v -> (
    let ( let* ) o f =
      match o with Some x -> f x | None -> Error "qlog: missing field"
    in
    let* ts_us = get num "ts_us" v in
    let* query_digest = get str "query_digest" v in
    let* plan_digest = get str "plan_digest" v in
    let* estimator = get str "estimator" v in
    let* engine = get str "engine" v in
    let* dop = get num "dop" v in
    let* rows = get num "rows" v in
    let* total_us = get num "total_us" v in
    let* feedback_hits = get num "feedback_hits" v in
    let* feedback_misses = get num "feedback_misses" v in
    let stages =
      match Json.member "stages" v with
      | Some (Json.Obj kvs) ->
        List.filter_map
          (fun (k, x) -> match x with Json.Num f -> Some (k, f) | _ -> None)
          kvs
      | _ -> []
    in
    Ok
      {
        ts_us = int_of_float ts_us;
        query_digest;
        plan_digest;
        estimator;
        engine;
        dop = int_of_float dop;
        rows = int_of_float rows;
        total_us;
        stages;
        est_rows = get_num_opt "est_rows" v;
        act_rows = get_num_opt "act_rows" v;
        max_qerror = get_num_opt "max_qerror" v;
        feedback_hits = int_of_float feedback_hits;
        feedback_misses = int_of_float feedback_misses;
      })

let append ~(path : string) (r : t) : unit =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  output_string oc (to_json r);
  output_char oc '\n';
  close_out oc
