(* Structured optimizer trace: typed events covering the three optimizer
   layers (rewrite rules, join enumeration, memoization), rendered either
   as human-readable text or as line-delimited JSON.

   Emitters hand a [event -> unit] sink down into the optimizer; the
   pipeline collects into a list when tracing is on and passes nothing
   when it is off, so the optimizer pays one closure call per event at
   most. *)

type event =
  | Rewrite_fired of { rule : string; before : string; after : string }
      (* [before]/[after] are block digests — see [digest] *)
  | Rewrite_rejected of { rule : string }
  | Enum_level of {
      level : int; (* relations joined (union-mask popcount) *)
      subsets : int;
      splits : int;
      costed : int;
      pruned : int;
    }
  | Prune of {
      left_mask : int;
      right_mask : int;
      lower_bound : float;
      bound : float;
    }
  | Order_retained of { order : string; cost : float; bound : float }
  | Memo_stats of { table : string; hits : int; misses : int }
  | Feedback_override of { digest : string; est : float; act : float }
      (* feedback-cache hit: derived estimate replaced by observed actual *)
  | Feedback_recorded of { digest : string; act : float }
      (* actual cardinality of an executed (sub)plan entered the cache *)

(* FNV-1a (32-bit) over the pretty-printed form: a stable, dependency-free
   fingerprint for before/after rewrite comparisons.  Not cryptographic —
   it only needs to distinguish "changed" from "unchanged" in a trace. *)
let digest (s : string) : string =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
       h := (!h lxor Char.code c) * 0x01000193 land 0xffffffff)
    s;
  Printf.sprintf "%08x" !h

let pp ppf = function
  | Rewrite_fired { rule; before; after } ->
    Fmt.pf ppf "rewrite %s fired: block %s -> %s" rule before after
  | Rewrite_rejected { rule } -> Fmt.pf ppf "rewrite %s rejected" rule
  | Enum_level { level; subsets; splits; costed; pruned } ->
    Fmt.pf ppf
      "enum level %d: %d subsets, %d splits, %d plans costed, %d pruned"
      level subsets splits costed pruned
  | Prune { left_mask; right_mask; lower_bound; bound } ->
    Fmt.pf ppf "prune {%#x x %#x}: lower bound %.3f > bound %.3f" left_mask
      right_mask lower_bound bound
  | Order_retained { order; cost; bound } ->
    Fmt.pf ppf "interesting order [%s] retained at cost %.3f (best %.3f)"
      order cost bound
  | Memo_stats { table; hits; misses } ->
    Fmt.pf ppf "memo %s: %d hits, %d misses" table hits misses
  | Feedback_override { digest; est; act } ->
    Fmt.pf ppf "feedback %s: estimate %.1f overridden by actual %.1f" digest
      est act
  | Feedback_recorded { digest; act } ->
    Fmt.pf ppf "feedback %s: recorded actual %.1f" digest act

let to_string e = Fmt.str "%a" pp e

(* JSON rendering is hand-rolled (no JSON dependency in the tree): one
   object per line, strings escaped per RFC 8259, non-finite floats
   (open bounds are +inf) mapped to null. *)
let json_escape (s : string) : string =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\r' -> Buffer.add_string b "\\r"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jstr s = "\"" ^ json_escape s ^ "\""

let jfloat f =
  if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let to_json = function
  | Rewrite_fired { rule; before; after } ->
    Printf.sprintf
      {|{"event":"rewrite_fired","rule":%s,"before":%s,"after":%s}|}
      (jstr rule) (jstr before) (jstr after)
  | Rewrite_rejected { rule } ->
    Printf.sprintf {|{"event":"rewrite_rejected","rule":%s}|} (jstr rule)
  | Enum_level { level; subsets; splits; costed; pruned } ->
    Printf.sprintf
      {|{"event":"enum_level","level":%d,"subsets":%d,"splits":%d,"costed":%d,"pruned":%d}|}
      level subsets splits costed pruned
  | Prune { left_mask; right_mask; lower_bound; bound } ->
    Printf.sprintf
      {|{"event":"prune","left_mask":%d,"right_mask":%d,"lower_bound":%s,"bound":%s}|}
      left_mask right_mask (jfloat lower_bound) (jfloat bound)
  | Order_retained { order; cost; bound } ->
    Printf.sprintf
      {|{"event":"order_retained","order":%s,"cost":%s,"bound":%s}|}
      (jstr order) (jfloat cost) (jfloat bound)
  | Memo_stats { table; hits; misses } ->
    Printf.sprintf {|{"event":"memo_stats","table":%s,"hits":%d,"misses":%d}|}
      (jstr table) hits misses
  | Feedback_override { digest; est; act } ->
    Printf.sprintf
      {|{"event":"feedback_override","digest":%s,"est":%s,"act":%s}|}
      (jstr digest) (jfloat est) (jfloat act)
  | Feedback_recorded { digest; act } ->
    Printf.sprintf {|{"event":"feedback_recorded","digest":%s,"act":%s}|}
      (jstr digest) (jfloat act)
