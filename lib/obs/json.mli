(** Minimal JSON well-formedness checker (RFC 8259 subset, no
    dependency).  The trace writer hand-builds its JSON; tests and the CI
    checker use this independent reader to certify the output. *)

(** Check one complete JSON value. *)
val validate : string -> (unit, string) result

(** Check line-delimited JSON: every non-empty line must be a standalone
    value.  Reports the first offending 1-based line. *)
val validate_lines : string -> (unit, string) result
