(** Minimal JSON well-formedness checker (RFC 8259 subset, no
    dependency).  The trace writer hand-builds its JSON; tests and the CI
    checker use this independent reader to certify the output. *)

(** Check one complete JSON value. *)
val validate : string -> (unit, string) result

(** Parsed JSON values, for the few readers in the tree (query-log
    round-trips, profile checks); emitters still hand-build strings. *)
type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list

(** Parse one complete JSON value (string escapes decoded). *)
val parse : string -> (value, string) result

(** First binding of [k] in an object; [None] otherwise. *)
val member : string -> value -> value option

(** Check line-delimited JSON: every non-empty line must be a standalone
    value.  Reports the first offending 1-based line. *)
val validate_lines : string -> (unit, string) result
