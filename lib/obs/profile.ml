(* Chrome trace-event export: the query's span tree plus the morsel
   engine's per-worker task timelines as one JSON object loadable in
   Perfetto / chrome://tracing.

   Layout: a single process (pid 1); thread 0 carries the pipeline span
   tree (parse -> ... -> execute, nested), and thread [w + 1] carries
   the interval of every parallel task domain [w] executed — so at
   dop > 1 the trace shows the actual morsel schedule next to the stage
   spans, on a shared monotonic time axis.

   Events are complete events (ph "X", ts/dur in microseconds relative
   to the earliest timestamp in the profile); thread names are metadata
   events (ph "M"). *)

module I = Exec.Instrument

let jstr = Trace.jstr

let buf_event b ~first ~tid ~name ~ts_us ~dur_us ~args =
  if not first then Buffer.add_string b ",\n";
  Buffer.add_string b
    (Printf.sprintf
       {|  {"name":%s,"ph":"X","pid":1,"tid":%d,"ts":%.1f,"dur":%.1f%s}|}
       (jstr name) tid ts_us (Float.max 0. dur_us)
       (match args with
        | [] -> ""
        | kvs ->
          ",\"args\":{"
          ^ String.concat ","
              (List.map (fun (k, v) -> jstr k ^ ":" ^ v) kvs)
          ^ "}"))

let buf_thread_name b ~tid ~name =
  Buffer.add_string b
    (Printf.sprintf
       {|  {"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%s}},|}
       tid (jstr name));
  Buffer.add_char b '\n'

(* The earliest timestamp anywhere in the profile is the time origin. *)
let epoch_of ?span (timelines : I.task list list) : float =
  let m = ref infinity in
  (match span with Some (s : Span.t) -> m := s.Span.start_s | None -> ());
  List.iter
    (List.iter (fun (t : I.task) -> if t.I.t_start < !m then m := t.I.t_start))
    timelines;
  if Float.is_finite !m then !m else 0.

let render ?span (recorders : (string * I.t) list) : string =
  let timelines = List.map (fun (_, r) -> I.timeline r) recorders in
  let epoch = epoch_of ?span timelines in
  let us t = Float.max 0. (t -. epoch) *. 1e6 in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[\n";
  buf_thread_name b ~tid:0 ~name:"pipeline";
  let workers =
    List.concat_map (List.map (fun (t : I.task) -> t.I.t_worker)) timelines
    |> List.sort_uniq compare
  in
  List.iter
    (fun w -> buf_thread_name b ~tid:(w + 1) ~name:(Printf.sprintf "worker %d" w))
    workers;
  let first = ref true in
  (match span with
   | None -> ()
   | Some root ->
     Span.iter
       (fun ~depth:_ (s : Span.t) ->
          buf_event b ~first:!first ~tid:0 ~name:s.Span.name
            ~ts_us:(us s.Span.start_s)
            ~dur_us:(Float.max 0. s.Span.dur_s *. 1e6)
            ~args:
              (List.map (fun (k, v) -> (k, jstr v)) s.Span.attrs);
          first := false)
       root);
  List.iter2
    (fun (label, _) tl ->
       List.iter
         (fun (t : I.task) ->
            buf_event b ~first:!first ~tid:(t.I.t_worker + 1) ~name:t.I.t_name
              ~ts_us:(us t.I.t_start)
              ~dur_us:((t.I.t_end -. t.I.t_start) *. 1e6)
              ~args:[ ("op", string_of_int t.I.t_op); ("block", jstr label) ];
            first := false)
         tl)
    recorders timelines;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

let write_file ?span (recorders : (string * I.t) list) (path : string) : unit
    =
  let oc = open_out path in
  output_string oc (render ?span recorders);
  close_out oc
