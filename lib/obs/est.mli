(** Post-hoc per-node cardinality estimates for physical plans.

    The enumerator costs logical subsets, not physical nodes; this module
    re-derives a per-node estimate by one bottom-up {!Stats.Derive} pass
    over the final plan — the same propagation rules the optimizer used.
    Must run while any temporary tables the plan scans are still present
    in the catalog and stats registry. *)

type t

(** Derive estimates for every node of [plan].  [db] must be the
    statistics snapshot the planner used — annotating against a registry
    refreshed after planning reports estimates the planner never saw
    (and mis-synthesizes index-scan bound selectivities).  When
    [feedback] is set, fresh observed cardinalities override the derived
    ones node by node, propagating upward exactly as in the optimizer. *)
val annotate :
  ?asm:Stats.Derive.assumption ->
  ?feedback:Stats.Feedback.t ->
  Storage.Catalog.t -> Stats.Table_stats.db -> Exec.Plan.t -> t

(** Feedback-cache key and involved base tables for every keyable node of
    the plan (physical identity), mirroring
    [Systemr.Join_order.feedback_key] for SPJ subtrees.  Subtrees
    touching materialized-view temp tables are skipped. *)
val feedback_keys :
  Exec.Plan.t -> (Exec.Plan.t * (Stats.Feedback.key * string list)) list

(** Estimated output cardinality of a node ([==] identity). *)
val card : t -> Exec.Plan.t -> float option

(** Copy estimates onto an instrument recorder's operators. *)
val attach : t -> Exec.Instrument.t -> unit
