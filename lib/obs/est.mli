(** Post-hoc per-node cardinality estimates for physical plans.

    The enumerator costs logical subsets, not physical nodes; this module
    re-derives a per-node estimate by one bottom-up {!Stats.Derive} pass
    over the final plan — the same propagation rules the optimizer used.
    Must run while any temporary tables the plan scans are still present
    in the catalog and stats registry. *)

type t

(** Derive estimates for every node of [plan]. *)
val annotate :
  ?asm:Stats.Derive.assumption ->
  Storage.Catalog.t -> Stats.Table_stats.db -> Exec.Plan.t -> t

(** Estimated output cardinality of a node ([==] identity). *)
val card : t -> Exec.Plan.t -> float option

(** Copy estimates onto an instrument recorder's operators. *)
val attach : t -> Exec.Instrument.t -> unit
