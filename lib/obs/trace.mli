(** Structured optimizer trace: typed events from the rewrite engine
    (rule fired/rejected), the join enumerator (per-level counters,
    branch-and-bound prunes, interesting-order retentions) and the
    memoization layers (interning hits), rendered as human-readable text
    or line-delimited JSON. *)

type event =
  | Rewrite_fired of { rule : string; before : string; after : string }
      (** [before]/[after] are {!digest}s of the block's printed form *)
  | Rewrite_rejected of { rule : string }
  | Enum_level of {
      level : int;  (** relations joined (union-mask popcount) *)
      subsets : int;
      splits : int;
      costed : int;
      pruned : int;
    }
  | Prune of {
      left_mask : int;
      right_mask : int;
      lower_bound : float;
      bound : float;
    }  (** branch-and-bound cut: [lower_bound > bound] *)
  | Order_retained of { order : string; cost : float; bound : float }
      (** a costlier plan kept for its interesting order *)
  | Memo_stats of { table : string; hits : int; misses : int }
  | Feedback_override of { digest : string; est : float; act : float }
      (** feedback-cache hit: derived estimate replaced by observed actual *)
  | Feedback_recorded of { digest : string; act : float }
      (** actual cardinality of an executed (sub)plan entered the cache *)

(** Stable FNV-1a fingerprint of a printed block (8 hex digits). *)
val digest : string -> string

(** RFC 8259 string-body escaping, shared by the hand-built JSON
    emitters in this library ({!Span}, {!Profile}, {!Qlog}). *)
val json_escape : string -> string

(** [json_escape] wrapped in quotes. *)
val jstr : string -> string

(** Finite floats as compact decimals; non-finite as [null]. *)
val jfloat : float -> string

val pp : Format.formatter -> event -> unit
val to_string : event -> string

(** One JSON object, no trailing newline; non-finite floats become
    [null]. *)
val to_json : event -> string
