(** Prometheus text exposition (format 0.0.4) of the {!Metrics}
    registry.  Counters render as [qopt_<name>_total], gauges as
    [qopt_<name>], histograms as cumulative [_bucket{le="..."}] series
    (ending in [le="+Inf"]) plus [_sum] and [_count].  Registry keys with
    inline labels ([stage_seconds{stage="optimize"}]) keep their labels,
    with [le] appended for buckets.

    Built only on {!Metrics.dump_cells}: read-only and typed, so
    rendering never raises regardless of what names the registry holds. *)

(** Render a specific cell list (tests). *)
val render_cells : (string * Metrics.value) list -> string

(** Render the whole registry. *)
val render : unit -> string

(** [render] to a file. *)
val write_file : string -> unit
