(** Structured query log: one JSON record per executed query, appended
    as NDJSON.  Records fingerprint the query and its chosen plan
    ({!Trace.digest}), carry per-stage latencies lifted from the span
    tree, and report estimated vs. actual cardinalities plus
    feedback-cache traffic for the estimation loop. *)

type t = {
  ts_us : int;  (** wall-clock Unix epoch, microseconds, at log time *)
  query_digest : string;
  plan_digest : string;
  estimator : string;
  engine : string;
  dop : int;
  rows : int;
  total_us : float;
  stages : (string * float) list;  (** stage name, duration in µs *)
  est_rows : float option;  (** optimizer's root-cardinality estimate *)
  act_rows : float option;  (** observed root cardinality *)
  max_qerror : float option;
  feedback_hits : int;
  feedback_misses : int;
}

(** One JSON object, no trailing newline; [None] numerics become
    [null]. *)
val to_json : t -> string

(** Inverse of {!to_json} (field order irrelevant; unknown fields
    ignored). *)
val of_json : string -> (t, string) result

(** Append one record as an NDJSON line, creating [path] if needed. *)
val append : path:string -> t -> unit
