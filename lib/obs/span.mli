(** Hierarchical span recorder: a per-query tree of named, monotonic
    wall-clock intervals with string attributes.

    The pipeline opens one recorder per query and wraps each stage
    (parse, bind, rewrite, optimize, verify, execute) in a span;
    enumerator and view sub-spans nest naturally.  [stop] closes any
    younger spans still open, so an exception unwinding past a stage
    cannot corrupt the tree; {!with_span} is the exception-safe form. *)

type t = {
  id : int;  (** creation order, root = 0 *)
  parent_id : int;  (** -1 for the root *)
  name : string;
  mutable attrs : (string * string) list;
  start_s : float;  (** absolute {!Clock.now} seconds *)
  mutable dur_s : float;  (** seconds; -1 while the span is open *)
  mutable children : t list;  (** in start order once closed *)
}

type recorder

(** New recorder with an open root span (default name ["query"]). *)
val create : ?name:string -> unit -> recorder

val root : recorder -> t

(** Open a child of the innermost open span. *)
val enter : recorder -> ?attrs:(string * string) list -> string -> t

(** Close [s] (and any unstopped spans opened under it). *)
val stop : recorder -> t -> unit

(** [with_span r name f] = enter; [f ()]; stop — exception-safe. *)
val with_span :
  recorder -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

(** Append an attribute (rendered in insertion order). *)
val set_attr : t -> string -> string -> unit

(** Close every open span including the root; returns the root. *)
val finish : recorder -> t

(** Pre-order walk with depth. *)
val iter : (depth:int -> t -> unit) -> t -> unit

(** Sum of the direct children's durations. *)
val children_dur : t -> float

(** Sum of durations over every span named [name] in the tree. *)
val dur_by_name : t -> string -> float

(** Indented text tree; [show_wall:false] drops durations (deterministic
    goldens). *)
val render : ?show_wall:bool -> t -> string

(** Line-delimited JSON, one object per span in pre-order, timestamps in
    microseconds relative to the root's start; [show_wall:false] drops
    [start_us]/[dur_us]. *)
val to_json_lines : ?show_wall:bool -> t -> string
