(* Alias: the monotonic clock lives in its own tiny library ([mclock])
   because [exec] needs it and [obs] depends on [exec]; everything above
   the execution layer should reach it as [Obs.Clock]. *)

include Mclock
