(** Monotonic clock (alias of [Mclock], see lib/clock).  All span,
    profile and bench timing goes through this so a wall-clock step
    backwards can never produce a negative interval. *)

val now : unit -> float
val elapsed_s : float -> float
