(* Post-hoc cardinality annotation of physical plans.

   The enumerator costs logical subsets, not physical nodes, so the
   per-node estimates EXPLAIN ANALYZE compares against are re-derived
   here: one bottom-up pass over the final plan through the same
   [Stats.Derive] propagation the optimizer used.  The pass is pure —
   it returns a lookup by physical node identity — and must run while
   the catalog/stats still contain any temporary tables the plan scans
   (materialized views are dropped after execution). *)

open Relalg

type t = (Exec.Plan.t * Stats.Derive.rel_stats) list

let conj a b =
  match (a, b) with
  | Expr.Const (Value.Bool true), e | e, Expr.Const (Value.Bool true) -> e
  | a, b -> Expr.And (a, b)

let bound_pred alias column lo hi =
  let c = Expr.col ~rel:alias ~col:column in
  let one op v = Expr.Cmp (op, c, Expr.Const v) in
  let lo_p =
    match lo with
    | Storage.Btree.Unbounded -> Expr.ftrue
    | Storage.Btree.Incl v -> one Expr.Ge v
    | Storage.Btree.Excl v -> one Expr.Gt v
  in
  let hi_p =
    match hi with
    | Storage.Btree.Unbounded -> Expr.ftrue
    | Storage.Btree.Incl v -> one Expr.Le v
    | Storage.Btree.Excl v -> one Expr.Lt v
  in
  conj lo_p hi_p

let pairs_pred pairs residual =
  List.fold_left
    (fun acc ((a : Expr.col_ref), (b : Expr.col_ref)) ->
       conj acc (Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b)))
    residual pairs

(* Base-table summary under an alias; tables unknown to the stats
   registry (possible for fabricated temps) fall back to the physical
   row count with no column statistics. *)
let table_stats cat (db : Stats.Table_stats.db) table alias =
  let t = Storage.Catalog.table cat table in
  let schema = Schema.requalify t.Storage.Table.schema ~rel:alias in
  let ts =
    match Stats.Table_stats.find db table with
    | Some ts -> ts
    | None ->
      { Stats.Table_stats.table;
        rows = float_of_int (Storage.Table.row_count t);
        pages = Storage.Table.page_count t;
        cols = [] }
  in
  Stats.Derive.of_table ts ~alias ~schema

let annotate ?asm (cat : Storage.Catalog.t) (db : Stats.Table_stats.db)
    (plan : Exec.Plan.t) : t =
  let module P = Exec.Plan in
  let acc : t ref = ref [] in
  let rec go (p : P.t) : Stats.Derive.rel_stats =
    let s =
      match p with
      | P.Seq_scan { table; alias; filter } ->
        let base = table_stats cat db table alias in
        (match filter with
         | None -> base
         | Some f -> Stats.Derive.apply_select ?asm base f)
      | P.Index_scan { table; alias; column; lo; hi; filter } ->
        let base = table_stats cat db table alias in
        let ranged =
          match bound_pred alias column lo hi with
          | Expr.Const (Value.Bool true) -> base
          | pred -> Stats.Derive.apply_select ?asm base pred
        in
        (match filter with
         | None -> ranged
         | Some f -> Stats.Derive.apply_select ?asm ranged f)
      | P.Filter (f, i) -> Stats.Derive.apply_select ?asm (go i) f
      | P.Project (items, i) -> Stats.Derive.project (go i) items
      | P.Sort (_, i) | P.Materialize i -> go i
      | P.Hash_distinct i -> Stats.Derive.distinct (go i)
      | P.Nested_loop { kind; pred; outer; inner } ->
        let so = go outer in
        let si = go inner in
        Stats.Derive.join ?asm kind so si pred
      | P.Index_nl { kind; outer; table; alias; columns; outer_keys; residual; _ }
        ->
        let so = go outer in
        let si = table_stats cat db table alias in
        let pred =
          List.fold_left2
            (fun acc k c ->
               conj acc
                 (Expr.Cmp (Expr.Eq, k, Expr.col ~rel:alias ~col:c)))
            residual outer_keys columns
        in
        Stats.Derive.join ?asm kind so si pred
      | P.Merge_join { kind; pairs; residual; left; right }
      | P.Hash_join { kind; pairs; residual; left; right } ->
        let sl = go left in
        let sr = go right in
        Stats.Derive.join ?asm kind sl sr (pairs_pred pairs residual)
      | P.Hash_agg { keys; aggs; input } | P.Stream_agg { keys; aggs; input }
        ->
        Stats.Derive.group (go input) ~keys ~aggs
    in
    acc := (p, s) :: !acc;
    s
  in
  ignore (go plan);
  !acc

let card (t : t) (p : Exec.Plan.t) : float option =
  let rec find = function
    | [] -> None
    | (q, s) :: rest ->
      if q == p then Some s.Stats.Derive.card else find rest
  in
  find t

(* Push estimates onto an instrument recorder's operators. *)
let attach (t : t) (r : Exec.Instrument.t) : unit =
  List.iter
    (fun (o : Exec.Instrument.op) ->
       o.Exec.Instrument.est_rows <- card t o.Exec.Instrument.node)
    (Exec.Instrument.ops r)
