(* Post-hoc cardinality annotation of physical plans.

   The enumerator costs logical subsets, not physical nodes, so the
   per-node estimates EXPLAIN ANALYZE compares against are re-derived
   here: one bottom-up pass over the final plan through the same
   [Stats.Derive] propagation the optimizer used.  The pass is pure —
   it returns a lookup by physical node identity — and must run while
   the catalog/stats still contain any temporary tables the plan scans
   (materialized views are dropped after execution). *)

open Relalg

type t = (Exec.Plan.t * Stats.Derive.rel_stats) list

let conj a b =
  match (a, b) with
  | Expr.Const (Value.Bool true), e | e, Expr.Const (Value.Bool true) -> e
  | a, b -> Expr.And (a, b)

let bound_pred alias column lo hi =
  let c = Expr.col ~rel:alias ~col:column in
  let one op v = Expr.Cmp (op, c, Expr.Const v) in
  let lo_p =
    match lo with
    | Storage.Btree.Unbounded -> Expr.ftrue
    | Storage.Btree.Incl v -> one Expr.Ge v
    | Storage.Btree.Excl v -> one Expr.Gt v
  in
  let hi_p =
    match hi with
    | Storage.Btree.Unbounded -> Expr.ftrue
    | Storage.Btree.Incl v -> one Expr.Le v
    | Storage.Btree.Excl v -> one Expr.Lt v
  in
  conj lo_p hi_p

let pairs_pred pairs residual =
  List.fold_left
    (fun acc ((a : Expr.col_ref), (b : Expr.col_ref)) ->
       conj acc (Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b)))
    residual pairs

(* Base-table summary under an alias; tables unknown to the stats
   registry (possible for fabricated temps) fall back to the physical
   row count with no column statistics. *)
let table_stats cat (db : Stats.Table_stats.db) table alias =
  let t = Storage.Catalog.table cat table in
  let schema = Schema.requalify t.Storage.Table.schema ~rel:alias in
  let ts =
    match Stats.Table_stats.find db table with
    | Some ts -> ts
    | None ->
      { Stats.Table_stats.table;
        rows = float_of_int (Storage.Table.row_count t);
        pages = Storage.Table.page_count t;
        cols = [] }
  in
  Stats.Derive.of_table ts ~alias ~schema

(* ------------------------------------------------------------------ *)
(* Feedback-cache keys of physical subtrees.

   Mirrors [Systemr.Join_order.feedback_key]: an SPJ subtree is keyed by
   its (alias, table) pairs plus the canonicalized conjuncts applied
   anywhere within it, independent of join order and selection placement
   — so the key a join operator records under here is the key the
   optimizer looks up for the corresponding subset mask.  Cardinality-
   changing non-SPJ operators (semi/anti/outer joins, grouping, distinct)
   get a shape-marked key and continue upward as an opaque pseudo-
   relation named by their own digest, which keeps keys deterministic
   across runs without claiming position-independence. *)

let is_temp_table t = String.length t >= 5 && String.sub t 0 5 = "__mat"

type sub = {
  srels : (string * string) list; (* (alias, table) incl. pseudo-relations *)
  spreds : string list; (* canonicalized conjuncts *)
  stables : string list; (* real base tables, for freshness fingerprints *)
}

let canon_conjuncts (e : Expr.t) : string list =
  List.filter_map
    (fun c ->
       match c with
       | Expr.Const (Value.Bool true) -> None
       | c -> Some (Stats.Feedback.canon_pred c))
    (Pred.conjuncts e)

let feedback_keys (plan : Exec.Plan.t) :
  (Exec.Plan.t * (Stats.Feedback.key * string list)) list =
  let module P = Exec.Plan in
  let acc = ref [] in
  let spj_key sub =
    Stats.Feedback.key ~shape:"spj" ~rels:sub.srels ~preds:sub.spreds
  in
  (* collapse a non-SPJ operator into a pseudo-relation keyed by its own
     digest so enclosing SPJ composition stays well defined *)
  let opaque key sub = { sub with srels = [ ("", "#" ^ key) ]; spreds = [] } in
  let shaped shape sub =
    let key = Stats.Feedback.key ~shape ~rels:sub.srels ~preds:sub.spreds in
    (key, opaque key sub)
  in
  let join_shape kind ~outer_aliases =
    let tag =
      match (kind : Algebra.join_kind) with
      | Algebra.Inner -> None
      | Algebra.Semi -> Some "semi"
      | Algebra.Anti -> Some "anti"
      | Algebra.Left_outer -> Some "outer"
    in
    Option.map
      (fun t -> t ^ "[" ^ String.concat "," (List.sort compare outer_aliases) ^ "]")
      tag
  in
  let merge a b = { srels = a.srels @ b.srels;
                    spreds = a.spreds @ b.spreds;
                    stables = a.stables @ b.stables }
  in
  let rec go (p : P.t) : sub option =
    let record_spj sub =
      acc := (p, (spj_key sub, sub.stables)) :: !acc;
      Some sub
    in
    let record_shaped shape sub =
      let key, sub' = shaped shape sub in
      acc := (p, (key, sub.stables)) :: !acc;
      Some sub'
    in
    let join_sub kind ~outer ~inner ~preds =
      match (outer, inner) with
      | Some o, Some i ->
        let sub = { (merge o i) with spreds = o.spreds @ i.spreds @ preds } in
        (match join_shape kind ~outer_aliases:(List.map fst o.srels) with
         | None -> record_spj sub
         | Some shape -> record_shaped shape sub)
      | _ -> None
    in
    match p with
    | P.Seq_scan { table; alias; filter } ->
      if is_temp_table table then None
      else
        record_spj
          { srels = [ (alias, table) ];
            spreds =
              (match filter with None -> [] | Some f -> canon_conjuncts f);
            stables = [ table ] }
    | P.Index_scan { table; alias; column; lo; hi; filter } ->
      if is_temp_table table then None
      else
        record_spj
          { srels = [ (alias, table) ];
            spreds =
              canon_conjuncts (bound_pred alias column lo hi)
              @ (match filter with None -> [] | Some f -> canon_conjuncts f);
            stables = [ table ] }
    | P.Filter (f, i) ->
      Option.bind (go i) (fun sub ->
          record_spj { sub with spreds = sub.spreds @ canon_conjuncts f })
    | P.Project (_, i) | P.Sort (_, i) | P.Materialize i ->
      (* cardinality-transparent: share the child's key *)
      Option.bind (go i) record_spj
    | P.Hash_distinct i ->
      Option.bind (go i) (record_shaped "distinct")
    | P.Nested_loop { kind; pred; outer; inner } ->
      join_sub kind ~outer:(go outer) ~inner:(go inner)
        ~preds:(canon_conjuncts pred)
    | P.Index_nl { kind; outer; table; alias; columns; outer_keys; residual; _ }
      ->
      if is_temp_table table then (ignore (go outer); None)
      else
        let inner =
          Some { srels = [ (alias, table) ]; spreds = []; stables = [ table ] }
        in
        let eqs =
          List.map2
            (fun k c ->
               Stats.Feedback.canon_pred
                 (Expr.Cmp (Expr.Eq, k, Expr.col ~rel:alias ~col:c)))
            outer_keys columns
        in
        join_sub kind ~outer:(go outer) ~inner
          ~preds:(eqs @ canon_conjuncts residual)
    | P.Merge_join { kind; pairs; residual; left; right }
    | P.Hash_join { kind; pairs; residual; left; right } ->
      join_sub kind ~outer:(go left) ~inner:(go right)
        ~preds:(canon_conjuncts (pairs_pred pairs residual))
    | P.Hash_agg { keys; aggs = _; input } | P.Stream_agg { keys; aggs = _; input }
      ->
      let shape =
        "group["
        ^ String.concat ","
            (List.sort compare (List.map (fun (e, _) -> Expr.to_string e) keys))
        ^ "]"
      in
      Option.bind (go input) (record_shaped shape)
  in
  ignore (go plan);
  !acc

let annotate ?asm ?feedback (cat : Storage.Catalog.t)
    (db : Stats.Table_stats.db) (plan : Exec.Plan.t) : t =
  let module P = Exec.Plan in
  let keys =
    match feedback with None -> [] | Some _ -> feedback_keys plan
  in
  let override (p : P.t) (s : Stats.Derive.rel_stats) =
    match feedback with
    | None -> s
    | Some fb -> (
      match List.assq_opt p keys with
      | None -> s
      | Some (k, _) -> (
        match Stats.Feedback.lookup fb ~db k with
        | Some act -> { s with Stats.Derive.card = act }
        | None -> s))
  in
  let acc : t ref = ref [] in
  let rec go (p : P.t) : Stats.Derive.rel_stats =
    let s =
      match p with
      | P.Seq_scan { table; alias; filter } ->
        let base = table_stats cat db table alias in
        (match filter with
         | None -> base
         | Some f -> Stats.Derive.apply_select ?asm base f)
      | P.Index_scan { table; alias; column; lo; hi; filter } ->
        let base = table_stats cat db table alias in
        let ranged =
          match bound_pred alias column lo hi with
          | Expr.Const (Value.Bool true) -> base
          | pred -> Stats.Derive.apply_select ?asm base pred
        in
        (match filter with
         | None -> ranged
         | Some f -> Stats.Derive.apply_select ?asm ranged f)
      | P.Filter (f, i) -> Stats.Derive.apply_select ?asm (go i) f
      | P.Project (items, i) -> Stats.Derive.project (go i) items
      | P.Sort (_, i) | P.Materialize i -> go i
      | P.Hash_distinct i -> Stats.Derive.distinct (go i)
      | P.Nested_loop { kind; pred; outer; inner } ->
        let so = go outer in
        let si = go inner in
        Stats.Derive.join ?asm kind so si pred
      | P.Index_nl { kind; outer; table; alias; columns; outer_keys; residual; _ }
        ->
        let so = go outer in
        let si = table_stats cat db table alias in
        let pred =
          List.fold_left2
            (fun acc k c ->
               conj acc
                 (Expr.Cmp (Expr.Eq, k, Expr.col ~rel:alias ~col:c)))
            residual outer_keys columns
        in
        Stats.Derive.join ?asm kind so si pred
      | P.Merge_join { kind; pairs; residual; left; right }
      | P.Hash_join { kind; pairs; residual; left; right } ->
        let sl = go left in
        let sr = go right in
        Stats.Derive.join ?asm kind sl sr (pairs_pred pairs residual)
      | P.Hash_agg { keys; aggs; input } | P.Stream_agg { keys; aggs; input }
        ->
        Stats.Derive.group (go input) ~keys ~aggs
    in
    let s = override p s in
    acc := (p, s) :: !acc;
    s
  in
  ignore (go plan);
  !acc

let card (t : t) (p : Exec.Plan.t) : float option =
  let rec find = function
    | [] -> None
    | (q, s) :: rest ->
      if q == p then Some s.Stats.Derive.card else find rest
  in
  find t

(* Push estimates onto an instrument recorder's operators. *)
let attach (t : t) (r : Exec.Instrument.t) : unit =
  List.iter
    (fun (o : Exec.Instrument.op) ->
       o.Exec.Instrument.est_rows <- card t o.Exec.Instrument.node)
    (Exec.Instrument.ops r)
