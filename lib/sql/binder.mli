(** Name resolution and lowering of parsed SQL to QGM blocks.  Scopes are
    searched innermost-first: a name resolving in an enclosing scope makes
    the subquery correlated.  Aggregate queries are normalized onto
    key/aggregate aliases, matching the QGM/lowering convention. *)

exception Error of string

(** Bind one SELECT against a catalog; [views] supplies CREATE VIEW
    definitions by name.  @raise Error on unknown/ambiguous names, NOT IN,
    non-grouped columns in grouped queries, or WHERE references to
    outer-joined relations (WHERE is applied before outerjoins attach;
    those columns are visible in SELECT / GROUP BY / HAVING / ORDER BY). *)
val bind :
  ?views:(string * Ast.select) list -> Storage.Catalog.t -> Ast.select ->
  Rewrite.Qgm.block

(** Bind a full query expression (UNION [ALL] chains).
    @raise Error on arity mismatch between union arms. *)
val bind_query :
  ?views:(string * Ast.select) list -> Storage.Catalog.t -> Ast.query ->
  Rewrite.Qgm.query

(** Bind a script of CREATE VIEW statements followed by one query. *)
val bind_script : Storage.Catalog.t -> Ast.statement list -> Rewrite.Qgm.query

(** Parse then bind a full query ({!bind_script} for scripts). *)
val query_of_string :
  ?views:(string * Ast.select) list -> Storage.Catalog.t -> string ->
  Rewrite.Qgm.query

(** Back-compatible single-block entry point.
    @raise Error when the text is a UNION. *)
val of_string :
  ?views:(string * Ast.select) list -> Storage.Catalog.t -> string ->
  Rewrite.Qgm.block
