(* Name resolution and lowering of parsed SQL to QGM blocks.

   Scopes are searched innermost-first: a name that resolves in an enclosing
   scope makes the subquery correlated (Section 4.2.2's terminology).
   Aggregate queries are normalized to the QGM/Lower convention: grouped
   output columns are unqualified names (key aliases and aggregate
   aliases), and select/having/order expressions are rewritten onto them. *)

open Relalg
module Q = Rewrite.Qgm

exception Error of string

let err fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type env = {
  cat : Storage.Catalog.t;
  views : (string * Ast.select) list; (* CREATE VIEW definitions *)
}

type scope = (string * Schema.t) list (* alias -> schema (alias-qualified) *)

(* ------------------------------------------------------------------ *)
(* Sources *)

let rec bind_from_item env (outer : scope list) (item : Ast.from_item) :
  Q.source =
  match item with
  | Ast.Table (name, alias_opt) -> (
    let alias = Option.value alias_opt ~default:name in
    match List.assoc_opt name env.views with
    | Some vdef ->
      let block = bind_select env outer vdef in
      Q.Derived { block; alias }
    | None -> (
      match Storage.Catalog.find_opt env.cat name with
      | Some e ->
        Q.Base
          { table = name; alias;
            schema =
              Schema.requalify e.Storage.Catalog.table.Storage.Table.schema
                ~rel:alias }
      | None -> err "unknown table or view: %s" name))
  | Ast.Subquery (s, alias) ->
    Q.Derived { block = bind_select env outer s; alias }

(* ------------------------------------------------------------------ *)
(* Expressions *)

and resolve_column (scopes : scope list) (qual : string option) (name : string)
  : Expr.col_ref =
  let try_scope (sc : scope) : Expr.col_ref option =
    match qual with
    | Some q ->
      if
        List.exists
          (fun (alias, schema) ->
             alias = q && Schema.mem schema ~rel:q ~name)
          sc
      then Some { Expr.rel = q; col = name }
      else
        (* a derived source exposes unqualified output columns requalified
           under its alias *)
        if
          List.exists
            (fun (alias, schema) ->
               alias = q
               && List.exists (fun (c : Schema.column) -> c.Schema.name = name)
                    schema)
            sc
        then Some { Expr.rel = q; col = name }
        else None
    | None -> (
      let hits =
        List.filter
          (fun ((_ : string), schema) ->
             List.exists (fun (c : Schema.column) -> c.Schema.name = name) schema)
          sc
      in
      match hits with
      | [ (alias, _) ] -> Some { Expr.rel = alias; col = name }
      | [] -> None
      | _ :: _ :: _ -> err "ambiguous column: %s" name)
  in
  let rec search = function
    | [] -> (
      match qual with
      | Some q -> err "unknown column %s.%s" q name
      | None -> err "unknown column %s" name)
    | sc :: rest -> (
      match try_scope sc with Some c -> c | None -> search rest)
  in
  search scopes

and bind_expr env (scopes : scope list) (e : Ast.expr) : Expr.t =
  match e with
  | Ast.Lit_int i -> Expr.int i
  | Ast.Lit_float f -> Expr.Const (Value.Float f)
  | Ast.Lit_string s -> Expr.str s
  | Ast.Lit_bool b -> Expr.bool b
  | Ast.Lit_null -> Expr.Const Value.Null
  | Ast.Column (q, n) -> Expr.Col (resolve_column scopes q n)
  | Ast.Binop (op, a, b) ->
    Expr.Binop (op, bind_expr env scopes a, bind_expr env scopes b)
  | Ast.Cmp (op, a, b) ->
    Expr.Cmp (op, bind_expr env scopes a, bind_expr env scopes b)
  | Ast.And (a, b) -> Expr.And (bind_expr env scopes a, bind_expr env scopes b)
  | Ast.Or (a, b) -> Expr.Or (bind_expr env scopes a, bind_expr env scopes b)
  | Ast.Not a -> Expr.Not (bind_expr env scopes a)
  | Ast.Is_null (a, positive) ->
    let inner = Expr.Is_null (bind_expr env scopes a) in
    if positive then inner else Expr.Not inner
  | Ast.Agg _ -> err "aggregate not allowed in this context"
  | Ast.In_query _ | Ast.Exists _ | Ast.Cmp_query _ ->
    err "subquery only allowed as a top-level WHERE/HAVING conjunct"

(* Split a WHERE/HAVING tree into QGM predicates; subqueries must be
   top-level conjuncts. *)
and bind_predicates env (scopes : scope list) (e : Ast.expr) : Q.predicate list
  =
  match e with
  | Ast.And (a, b) ->
    bind_predicates env scopes a @ bind_predicates env scopes b
  | Ast.In_query (x, sub) ->
    [ Q.In_sub (bind_expr env scopes x, bind_select env scopes sub) ]
  | Ast.Exists (positive, sub) ->
    [ Q.Exists_sub (positive, bind_select env scopes sub) ]
  | Ast.Cmp_query (op, x, sub) ->
    [ Q.Cmp_sub (op, bind_expr env scopes x, bind_select env scopes sub) ]
  | Ast.Not (Ast.In_query _) ->
    err "NOT IN is not supported; rewrite as NOT EXISTS"
  | e -> [ Q.P (bind_expr env scopes e) ]

(* ------------------------------------------------------------------ *)
(* Aggregation normalization *)

and contains_agg = function
  | Ast.Agg _ -> true
  | Ast.Binop (_, a, b) | Ast.Cmp (_, a, b) | Ast.And (a, b) | Ast.Or (a, b)
    -> contains_agg a || contains_agg b
  | Ast.Not a | Ast.Is_null (a, _) -> contains_agg a
  | Ast.Lit_int _ | Ast.Lit_float _ | Ast.Lit_string _ | Ast.Lit_bool _
  | Ast.Lit_null | Ast.Column _ -> false
  | Ast.In_query (a, _) | Ast.Cmp_query (_, a, _) -> contains_agg a
  | Ast.Exists _ -> false

and bind_agg env scopes (fn : Ast.agg_fn) (arg : Ast.expr option) : Expr.agg =
  match fn, arg with
  | Ast.Fn_count, None -> Expr.Count_star
  | Ast.Fn_count, Some e -> Expr.Count (bind_expr env scopes e)
  | Ast.Fn_sum, Some e -> Expr.Sum (bind_expr env scopes e)
  | Ast.Fn_min, Some e -> Expr.Min (bind_expr env scopes e)
  | Ast.Fn_max, Some e -> Expr.Max (bind_expr env scopes e)
  | Ast.Fn_avg, Some e -> Expr.Avg (bind_expr env scopes e)
  | (Ast.Fn_sum | Ast.Fn_min | Ast.Fn_max | Ast.Fn_avg), None ->
    err "aggregate function requires an argument"

(* ------------------------------------------------------------------ *)
(* SELECT *)

and bind_select env (outer : scope list) (s : Ast.select) : Q.block =
  (* 1. FROM: split joined items into inner sources and outerjoins *)
  let sources = ref [] in
  let outerjoin_specs = ref [] in
  let rec flatten (j : Ast.joined) =
    match j with
    | Ast.Plain item -> sources := !sources @ [ bind_from_item env outer item ]
    | Ast.Left_outer_join (l, item, pred) ->
      flatten l;
      outerjoin_specs := !outerjoin_specs @ [ (bind_from_item env outer item, pred) ]
  in
  List.iter flatten s.Ast.from;
  let scope_of src = (Q.alias_of_source src, Q.source_schema src) in
  let scope : scope =
    List.map scope_of (!sources @ List.map fst !outerjoin_specs)
  in
  let scopes = scope :: outer in
  let outerjoins =
    List.map
      (fun (src, pred) ->
         { Q.o_source = src; o_pred = bind_expr env scopes pred })
      !outerjoin_specs
  in
  (* 2. WHERE.  Outer-joined relations are NOT in scope here: the whole
     pipeline (QGM evaluation, lowering, the verifier) applies WHERE
     before outerjoins attach, so a reference to one would either crash
     or silently change meaning.  Such columns are visible after the
     join — in SELECT, GROUP BY, HAVING and ORDER BY. *)
  let where_scopes = (List.map scope_of !sources : scope) :: outer in
  let where =
    match s.Ast.where with
    | None -> []
    | Some e -> (
      try bind_predicates env where_scopes e
      with Error _ as exn ->
        (* resolves once outerjoin aliases are added? then say so *)
        (match bind_predicates env scopes e with
         | _ ->
           err
             "WHERE references a column of a LEFT OUTER JOIN relation; it \
              is only visible after the join (in SELECT, GROUP BY, HAVING \
              or ORDER BY)"
         | exception Error _ -> raise exn))
  in
  (* 3. aggregation *)
  let is_agg_query =
    s.Ast.group_by <> []
    || List.exists
         (function Ast.Item (e, _) -> contains_agg e | Ast.Star -> false)
         s.Ast.items
    || (match s.Ast.having with Some e -> contains_agg e | None -> false)
  in
  if not is_agg_query then begin
    (* plain block *)
    let select =
      List.concat_map
        (fun item ->
           match item with
           | Ast.Star -> Q.select_star !sources
           | Ast.Item (e, alias) ->
             let bound = bind_expr env scopes e in
             let name =
               match alias, bound with
               | Some a, _ -> a
               | None, Expr.Col c -> c.Expr.col
               | None, _ -> Q.fresh_alias "col"
             in
             [ (bound, name) ])
        s.Ast.items
    in
    let having =
      match s.Ast.having with
      | None -> []
      | Some e -> bind_predicates env scopes e
    in
    { Q.distinct = s.Ast.distinct; select; from = !sources; where;
      group_by = []; aggs = []; having; semijoins = []; outerjoins;
      order_by =
        List.map (fun (e, d) -> (bind_expr env scopes e, d)) s.Ast.order_by }
  end
  else begin
    (* grouped query: normalize onto key/agg aliases *)
    let keys =
      List.map
        (fun ge ->
           let bound = bind_expr env scopes ge in
           let name =
             match bound with
             | Expr.Col c -> c.Expr.col
             | _ -> Q.fresh_alias "key"
           in
           (bound, name))
        s.Ast.group_by
    in
    let aggs = ref [] in
    let agg_ref fn arg =
      let bound = bind_agg env scopes fn arg in
      match List.find_opt (fun (g, _) -> g = bound) !aggs with
      | Some (_, alias) -> Expr.col ~rel:"" ~col:alias
      | None ->
        let alias = Printf.sprintf "agg%d" (List.length !aggs) in
        aggs := !aggs @ [ (bound, alias) ];
        Expr.col ~rel:"" ~col:alias
    in
    (* rewrite an AST expression into the grouped output namespace *)
    let rec grouped_expr (e : Ast.expr) : Expr.t =
      match key_match e with
      | Some key_alias -> Expr.col ~rel:"" ~col:key_alias
      | None -> (
        match e with
        | Ast.Agg (fn, arg) -> agg_ref fn arg
        | Ast.Binop (op, a, b) -> Expr.Binop (op, grouped_expr a, grouped_expr b)
        | Ast.Cmp (op, a, b) -> Expr.Cmp (op, grouped_expr a, grouped_expr b)
        | Ast.And (a, b) -> Expr.And (grouped_expr a, grouped_expr b)
        | Ast.Or (a, b) -> Expr.Or (grouped_expr a, grouped_expr b)
        | Ast.Not a -> Expr.Not (grouped_expr a)
        | Ast.Is_null (a, positive) ->
          let inner = Expr.Is_null (grouped_expr a) in
          if positive then inner else Expr.Not inner
        | Ast.Lit_int _ | Ast.Lit_float _ | Ast.Lit_string _ | Ast.Lit_bool _
        | Ast.Lit_null -> bind_expr env scopes e
        | Ast.Column (q, n) ->
          err "column %s%s must appear in GROUP BY or inside an aggregate"
            (match q with Some q -> q ^ "." | None -> "")
            n
        | Ast.In_query _ | Ast.Exists _ | Ast.Cmp_query _ ->
          err "subquery not allowed here")
    and key_match (e : Ast.expr) : string option =
      match e with
      | Ast.Agg _ -> None
      | _ -> (
        match bind_expr env scopes e with
        | bound ->
          List.find_map
            (fun (ke, alias) -> if ke = bound then Some alias else None)
            keys
        | exception Error _ -> None)
    in
    let select =
      List.concat_map
        (fun item ->
           match item with
           | Ast.Star ->
             (* SELECT * on a grouped query: all keys then all aggregates *)
             List.map
               (fun (_, a) -> (Expr.col ~rel:"" ~col:a, a))
               keys
           | Ast.Item (e, alias) ->
             let bound = grouped_expr e in
             let name =
               match alias, bound, e with
               | Some a, _, _ -> a
               | None, Expr.Col { Expr.rel = ""; col }, _ -> col
               | None, _, _ -> Q.fresh_alias "col"
             in
             [ (bound, name) ])
        s.Ast.items
    in
    let having =
      match s.Ast.having with
      | None -> []
      | Some e -> (
        (* subquery conjuncts in HAVING keep their own binding; plain ones
           are rewritten into the grouped namespace *)
        let rec split (e : Ast.expr) : Q.predicate list =
          match e with
          | Ast.And (a, b) -> split a @ split b
          | Ast.In_query (x, sub) ->
            [ Q.In_sub (grouped_expr x, bind_select env scopes sub) ]
          | Ast.Exists (positive, sub) ->
            [ Q.Exists_sub (positive, bind_select env scopes sub) ]
          | Ast.Cmp_query (op, x, sub) ->
            [ Q.Cmp_sub (op, grouped_expr x, bind_select env scopes sub) ]
          | e -> [ Q.P (grouped_expr e) ]
        in
        split e)
    in
    { Q.distinct = s.Ast.distinct; select; from = !sources; where;
      group_by = keys; aggs = !aggs; having; semijoins = []; outerjoins;
      order_by =
        List.map (fun (e, d) -> (grouped_expr e, d)) s.Ast.order_by }
  end

(* ------------------------------------------------------------------ *)
(* Entry points *)

let bind ?(views = []) cat (s : Ast.select) : Q.block =
  bind_select { cat; views } [] s

(* Bind a full query expression (UNION [ALL] chains). *)
let rec bind_query_expr env (q : Ast.query) : Q.query =
  match q with
  | Ast.Single s -> Q.Q_block (bind_select env [] s)
  | Ast.Union (l, all, r) ->
    let lq = bind_query_expr env l and rq = bind_query_expr env r in
    if
      Relalg.Schema.arity (Q.query_schema lq)
      <> Relalg.Schema.arity (Q.query_schema rq)
    then err "UNION arms have different numbers of columns";
    Q.Q_union { all; left = lq; right = rq }

let bind_query ?(views = []) cat (q : Ast.query) : Q.query =
  bind_query_expr { cat; views } q

(* Bind a script of CREATE VIEW statements followed by one query. *)
let bind_script cat (stmts : Ast.statement list) : Q.query =
  let views, selects =
    List.fold_left
      (fun (views, selects) stmt ->
         match stmt with
         | Ast.Create_view (name, def) -> (views @ [ (name, def) ], selects)
         | Ast.Select_stmt s -> (views, selects @ [ s ]))
      ([], []) stmts
  in
  match selects with
  | [ s ] -> bind_query ~views cat s
  | _ -> err "expected exactly one SELECT statement"

(* Parse and bind; single-block queries come back as [Q_block]. *)
let query_of_string ?views cat (sql : string) : Q.query =
  match Parser.parse sql with
  | [ Ast.Select_stmt s ] -> bind_query ?views cat s
  | stmts ->
    ignore views;
    bind_script cat stmts

(* Back-compatible single-block entry point.
   @raise Error when the text is a UNION. *)
let of_string ?views cat (sql : string) : Q.block =
  match query_of_string ?views cat sql with
  | Q.Q_block b -> b
  | Q.Q_union _ -> err "UNION query: use query_of_string"
