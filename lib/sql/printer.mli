(** SQL pretty-printer: renders an AST back to a single line of parseable
    text.  The contract — property-tested by the fuzzer — is that printing
    then re-lexing, re-parsing and re-binding yields a QGM tree equal to
    binding the original AST directly.  Compound sub-expressions are
    parenthesized conservatively so the parser reconstructs the exact tree
    shape regardless of its associativity choices. *)

val expr_to_string : Ast.expr -> string
val select_to_string : Ast.select -> string
val query_to_string : Ast.query -> string
val statement_to_string : Ast.statement -> string
