(* SQL pretty-printer — the inverse of the parser, on one line.

   The only subtlety is parenthesization: the parser right-associates
   AND/OR chains and folds arithmetic left-to-right, so a naive
   precedence-based printer would round-trip to a differently-shaped AST.
   Wrapping every compound operand in parentheses makes the reparse
   reconstruct the exact tree, which is what the fuzzer's round-trip
   oracle compares (after binding). *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c -> if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* The lexer has no exponent syntax, so force plain decimal notation. *)
let float_repr f =
  let s = Printf.sprintf "%.12g" f in
  if String.contains s 'e' || not (String.contains s '.') then
    Printf.sprintf "%.1f" f
  else s

let agg_name = function
  | Ast.Fn_count -> "COUNT"
  | Ast.Fn_sum -> "SUM"
  | Ast.Fn_min -> "MIN"
  | Ast.Fn_max -> "MAX"
  | Ast.Fn_avg -> "AVG"

let pr_list buf sep pr = function
  | [] -> ()
  | x :: rest ->
    pr buf x;
    List.iter
      (fun y ->
         Buffer.add_string buf sep;
         pr buf y)
      rest

(* Atoms print bare in any operand position; everything else gets parens. *)
let is_atom = function
  | Ast.Lit_int _ | Ast.Lit_float _ | Ast.Lit_string _ | Ast.Lit_bool _
  | Ast.Lit_null | Ast.Column _ | Ast.Agg _ -> true
  | _ -> false

let rec pr_expr buf (e : Ast.expr) =
  let add = Buffer.add_string buf in
  let operand e =
    if is_atom e then pr_expr buf e
    else begin
      add "(";
      pr_expr buf e;
      add ")"
    end
  in
  match e with
  | Ast.Lit_int i -> add (string_of_int i)
  | Ast.Lit_float f -> add (float_repr f)
  | Ast.Lit_string s ->
    add "'";
    add (escape s);
    add "'"
  | Ast.Lit_bool b -> add (if b then "TRUE" else "FALSE")
  | Ast.Lit_null -> add "NULL"
  | Ast.Column (None, c) -> add c
  | Ast.Column (Some q, c) ->
    add q;
    add ".";
    add c
  | Ast.Binop (op, a, b) ->
    operand a;
    add " ";
    add (Relalg.Expr.binop_name op);
    add " ";
    operand b
  | Ast.Cmp (op, a, b) ->
    operand a;
    add " ";
    add (Relalg.Expr.cmp_name op);
    add " ";
    operand b
  | Ast.And (a, b) ->
    operand a;
    add " AND ";
    operand b
  | Ast.Or (a, b) ->
    operand a;
    add " OR ";
    operand b
  | Ast.Not a ->
    add "NOT ";
    add "(";
    pr_expr buf a;
    add ")"
  | Ast.Is_null (a, positive) ->
    operand a;
    add (if positive then " IS NULL" else " IS NOT NULL")
  | Ast.In_query (a, s) ->
    operand a;
    add " IN (";
    pr_select buf s;
    add ")"
  | Ast.Exists (positive, s) ->
    add (if positive then "EXISTS (" else "NOT EXISTS (");
    pr_select buf s;
    add ")"
  | Ast.Cmp_query (op, a, s) ->
    operand a;
    add " ";
    add (Relalg.Expr.cmp_name op);
    add " (";
    pr_select buf s;
    add ")"
  | Ast.Agg (fn, None) ->
    add (agg_name fn);
    add "(*)"
  | Ast.Agg (fn, Some a) ->
    add (agg_name fn);
    add "(";
    pr_expr buf a;
    add ")"

and pr_item buf = function
  | Ast.Star -> Buffer.add_string buf "*"
  | Ast.Item (e, alias) ->
    pr_expr buf e;
    (match alias with
     | None -> ()
     | Some a ->
       Buffer.add_string buf " AS ";
       Buffer.add_string buf a)

and pr_from_item buf = function
  | Ast.Table (name, alias) ->
    Buffer.add_string buf name;
    (match alias with
     | None -> ()
     | Some a ->
       Buffer.add_string buf " AS ";
       Buffer.add_string buf a)
  | Ast.Subquery (s, alias) ->
    Buffer.add_string buf "(";
    pr_select buf s;
    Buffer.add_string buf ") AS ";
    Buffer.add_string buf alias

and pr_joined buf = function
  | Ast.Plain item -> pr_from_item buf item
  | Ast.Left_outer_join (l, item, pred) ->
    pr_joined buf l;
    Buffer.add_string buf " LEFT OUTER JOIN ";
    pr_from_item buf item;
    Buffer.add_string buf " ON ";
    pr_expr buf pred

and pr_select buf (s : Ast.select) =
  let add = Buffer.add_string buf in
  add "SELECT ";
  if s.Ast.distinct then add "DISTINCT ";
  pr_list buf ", " pr_item s.Ast.items;
  add " FROM ";
  pr_list buf ", " pr_joined s.Ast.from;
  (match s.Ast.where with
   | None -> ()
   | Some e ->
     add " WHERE ";
     pr_expr buf e);
  (match s.Ast.group_by with
   | [] -> ()
   | keys ->
     add " GROUP BY ";
     pr_list buf ", "
       (fun buf e ->
          if is_atom e then pr_expr buf e
          else begin
            Buffer.add_string buf "(";
            pr_expr buf e;
            Buffer.add_string buf ")"
          end)
       keys);
  (match s.Ast.having with
   | None -> ()
   | Some e ->
     add " HAVING ";
     pr_expr buf e);
  match s.Ast.order_by with
  | [] -> ()
  | keys ->
    add " ORDER BY ";
    pr_list buf ", "
      (fun buf (e, d) ->
         if is_atom e then pr_expr buf e
         else begin
           Buffer.add_string buf "(";
           pr_expr buf e;
           Buffer.add_string buf ")"
         end;
         if d = Relalg.Algebra.Desc then Buffer.add_string buf " DESC")
      keys

let rec pr_query buf = function
  | Ast.Single s -> pr_select buf s
  | Ast.Union (l, all, r) ->
    pr_query buf l;
    Buffer.add_string buf (if all then " UNION ALL " else " UNION ");
    pr_query buf r

let with_buf pr x =
  let buf = Buffer.create 256 in
  pr buf x;
  Buffer.contents buf

let expr_to_string = with_buf pr_expr
let select_to_string = with_buf pr_select
let query_to_string = with_buf pr_query

let statement_to_string = function
  | Ast.Select_stmt q -> query_to_string q
  | Ast.Create_view (name, s) ->
    Printf.sprintf "CREATE VIEW %s AS %s" name (select_to_string s)
