(** A fixed-size pool of worker domains executing indexed task batches.

    [run pool ~tasks f] evaluates [f ~worker i] for every [i] in
    [0 .. tasks-1], distributing tasks over the pool's domains by atomic
    work stealing.  The calling domain participates as worker [0]; spawned
    domains are workers [1 .. dop-1].  [run] returns only after every task
    has finished, so writes made by the tasks are visible to the caller
    afterwards.  Tasks must not themselves call [run] on the same pool.

    On OCaml < 5 (no domains) the module degrades to a sequential loop:
    [available] is [false], every pool has [dop] 1, and [run] evaluates the
    tasks in index order on the caller.  On OCaml 5 task execution order is
    unspecified, so tasks must write to disjoint state. *)

(** [true] when real parallel domains back the pool. *)
val available : bool

(** Domains the runtime recommends (1 on OCaml < 5). *)
val cpu_count : unit -> int

type t

(** [create n] spawns [max 0 (n-1)] worker domains (the caller is the
    n-th worker).  [n <= 1] spawns nothing. *)
val create : int -> t

(** Total workers, including the caller: spawned domains + 1. *)
val dop : t -> int

(** [run pool ~tasks f] executes [f ~worker i] for [i = 0..tasks-1] and
    waits for completion.  [?workers] caps how many workers participate
    (default: all); the caller always participates.  The first exception
    raised by a task is re-raised after all workers have quiesced. *)
val run : ?workers:int -> t -> tasks:int -> (worker:int -> int -> unit) -> unit

(** Join all worker domains.  The pool must not be used afterwards. *)
val shutdown : t -> unit

(** [with_pool n f] = [f (create n)], guaranteeing shutdown. *)
val with_pool : int -> (t -> 'a) -> 'a
