(** Scalar expressions with SQL three-valued logic, and aggregate
    functions. *)

(** A (relation alias, column name) reference. An empty [rel] is resolved
    against the whole schema. *)
type col_ref = { rel : string; col : string }

type binop = Add | Sub | Mul | Div | Mod

type cmpop = Eq | Neq | Lt | Le | Gt | Ge

(** Expression trees.  [Udf] carries a user-defined function together with
    its optimizer contract (per-tuple cost and selectivity, Section 7.2 of
    the paper). *)
type t =
  | Const of Value.t
  | Col of col_ref
  | Binop of binop * t * t
  | Cmp of cmpop * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Is_null of t
  | Udf of udf * t list

and udf = {
  udf_name : string;
  udf_fn : Value.t list -> Value.t;
  udf_cost_per_tuple : float;
  udf_selectivity : float;
}

(** {2 Construction helpers} *)

val col : rel:string -> col:string -> t
val int : int -> t
val str : string -> t
val bool : bool -> t

(** The constant TRUE (the identity of conjunction). *)
val ftrue : t

val cmp_name : cmpop -> string
val binop_name : binop -> string

(** {2 Inspection} *)

(** Columns referenced, deduplicated, in first-occurrence order. *)
val columns : t -> col_ref list

(** Relation aliases referenced, sorted and deduplicated. *)
val relations : t -> string list

(** {2 Evaluation} *)

exception Type_error of string

(** [compile schema e] resolves column positions once and returns a
    per-tuple evaluator.  @raise Type_error on unresolvable columns. *)
val compile : Schema.t -> t -> Tuple.t -> Value.t

(** One-shot evaluation. *)
val eval : Schema.t -> Tuple.t -> t -> Value.t

(** Predicate evaluation with WHERE semantics: UNKNOWN rejects. *)
val holds : Schema.t -> t -> Tuple.t -> bool

(** [compile2 left right e] resolves columns against
    [Schema.concat left right] (same lookup and ambiguity behaviour as
    {!compile} on the concatenation) but pins each reference to a (side,
    offset) pair, so join predicates evaluate over the two input tuples
    without materializing their concatenation.
    @raise Type_error on unresolvable columns. *)
val compile2 : Schema.t -> Schema.t -> t -> Tuple.t -> Tuple.t -> Value.t

(** {!holds} over two input tuples, via {!compile2}. *)
val holds2 : Schema.t -> Schema.t -> t -> Tuple.t -> Tuple.t -> bool

(** SQL arithmetic on two values: NULL operands propagate, Int pairs use
    native integer arithmetic (Div/Mod by zero is NULL), mixed numerics
    promote to Float, [Add] concatenates strings.
    @raise Type_error on non-numeric operands otherwise. *)
val arith : binop -> Value.t -> Value.t -> Value.t

(** [compare_op op c] applies comparison operator [op] to the sign [c] of a
    three-way comparison. *)
val compare_op : cmpop -> int -> bool

(** {2 Aggregates} *)

type agg =
  | Count_star
  | Count of t
  | Sum of t
  | Min of t
  | Max of t
  | Avg of t

(** The argument expression, or [None] for [Count_star]. *)
val agg_arg : agg -> t option

val pp_agg : Format.formatter -> agg -> unit

(** Streaming aggregate state: {!agg_init}, then {!agg_step} per value,
    then {!agg_final}.  SUM/MIN/MAX/AVG of an empty (or all-NULL) input are
    NULL; COUNT is 0. *)
type agg_state

val agg_init : unit -> agg_state
val agg_step : agg_state -> Value.t -> unit

(** [agg_step_int st k] = [agg_step st (Value.Int k)] without boxing the
    argument (the min/max slots allocate only when they change).  The
    columnar engines use it to fold unboxed integer columns; the resulting
    state is field-identical to the boxed fold. *)
val agg_step_int : agg_state -> int -> unit

val agg_final : agg -> agg_state -> Value.t

(** Merge two partial states — the combining form used by staged
    aggregation (Figure 4c).  Valid for COUNT/SUM/MIN/MAX/AVG. *)
val agg_combine : agg_state -> agg_state -> agg_state

(** Result type of an aggregate given its argument type. *)
val agg_ty : agg -> Value.ty option -> Value.ty

val pp : Format.formatter -> t -> unit
val to_string : t -> string
