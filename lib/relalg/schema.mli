(** Schemas: ordered lists of relation-qualified, typed columns. *)

(** One column: relation alias (possibly [""] for derived outputs), name,
    type, and nullability.  [nullable = false] asserts the column can never
    hold NULL — catalog declarations and schema inference both maintain it,
    so the binder and the static plan analyzer share one source of truth.
    The conservative default is [true]. *)
type column = { rel : string; name : string; ty : Value.ty; nullable : bool }

type t = column list

(** Construct a column with the conservative [nullable = true]. *)
val column : rel:string -> name:string -> ty:Value.ty -> column

(** Override a column's nullability (e.g. from catalog NOT NULL
    declarations or schema inference). *)
val with_nullable : bool -> column -> column

(** Number of columns. *)
val arity : t -> int

(** Position of a column reference. An empty [rel] matches any qualifier.
    @raise Not_found when absent.
    @raise Failure when an unqualified reference is ambiguous. *)
val index_of : t -> rel:string -> name:string -> int

(** Like {!index_of}, returning the position and the column, or [None]. *)
val find_opt : t -> rel:string -> name:string -> (int * column) option

(** Membership test with the same matching rules as {!index_of}. *)
val mem : t -> rel:string -> name:string -> bool

(** Concatenation for joins: left columns first. *)
val concat : t -> t -> t

(** Re-qualify every column under a new alias (view renaming). *)
val requalify : t -> rel:string -> t

val pp_column : Format.formatter -> column -> unit
val pp : Format.formatter -> t -> unit
