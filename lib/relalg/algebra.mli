(** Logical operator trees — the "query trees" of the paper (Figure 2). *)

(** Join kinds.  [Semi]/[Anti] keep only left attributes and are produced
    by subquery unnesting; [Left_outer] pads unmatched left tuples with
    NULLs. *)
type join_kind = Inner | Left_outer | Semi | Anti

type dir = Asc | Desc

type sort_key = Expr.t * dir

type t =
  | Scan of { table : string; alias : string; schema : Schema.t }
  | Select of Expr.t * t
  | Project of (Expr.t * string) list * t
  | Join of join_kind * Expr.t * t * t
  | Group_by of group_by
  | Distinct of t
  | Order_by of sort_key list * t

and group_by = {
  keys : (Expr.t * string) list;
  aggs : (Expr.agg * string) list;
  input : t;
}

val join_kind_name : join_kind -> string

(** Cheap, always-sound nullability of an expression result against an
    input schema: plain column references and non-NULL constants are
    non-null when their source is, everything else is conservatively
    nullable. *)
val expr_nullable : Schema.t -> Expr.t -> bool

(** Nullability of an aggregate output: COUNT is never NULL; SUM/MIN/MAX/
    AVG may be (empty or all-NULL group). *)
val agg_nullable : Schema.t -> Expr.agg -> bool

(** Output schema.  Projection and grouping outputs are unqualified columns
    named by their aliases; nullability is propagated (outer-join right
    sides become nullable, plain projected columns inherit). *)
val schema : t -> Schema.t

(** Relation aliases contributing base tuples to this subtree (semi/anti
    right sides excluded — they contribute no output columns). *)
val base_aliases : t -> string list

(** Operator-node count. *)
val size : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
