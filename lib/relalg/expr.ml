(* Scalar expressions with SQL three-valued logic.

   Evaluation is two-stage: [compile schema e] resolves every column
   reference to a position once, returning a closure evaluated per tuple.
   [eval schema tuple e] is the convenience one-shot form. *)

type col_ref = { rel : string; col : string }

type binop = Add | Sub | Mul | Div | Mod

type cmpop = Eq | Neq | Lt | Le | Gt | Ge

type t =
  | Const of Value.t
  | Col of col_ref
  | Binop of binop * t * t
  | Cmp of cmpop * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Is_null of t
  | Udf of udf * t list
      (* user-defined function/predicate with an optimizer-visible cost and
         selectivity contract (Section 7.2 of the paper) *)

and udf = {
  udf_name : string;
  udf_fn : Value.t list -> Value.t;
  udf_cost_per_tuple : float; (* CPU cost units per invocation *)
  udf_selectivity : float;    (* fraction of tuples passing when boolean *)
}

let col ~rel ~col = Col { rel; col }
let int i = Const (Value.Int i)
let str s = Const (Value.Str s)
let bool b = Const (Value.Bool b)
let ftrue = Const (Value.Bool true)

let cmp_name = function
  | Eq -> "=" | Neq -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"

let rec pp ppf = function
  | Const v -> Value.pp ppf v
  | Col { rel; col } ->
    if rel = "" then Fmt.string ppf col else Fmt.pf ppf "%s.%s" rel col
  | Binop (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp a (binop_name op) pp b
  | Cmp (op, a, b) -> Fmt.pf ppf "%a %s %a" pp a (cmp_name op) pp b
  | And (a, b) -> Fmt.pf ppf "(%a AND %a)" pp a pp b
  | Or (a, b) -> Fmt.pf ppf "(%a OR %a)" pp a pp b
  | Not a -> Fmt.pf ppf "NOT (%a)" pp a
  | Is_null a -> Fmt.pf ppf "%a IS NULL" pp a
  | Udf (u, args) ->
    Fmt.pf ppf "%s(%a)" u.udf_name Fmt.(list ~sep:(any ", ") pp) args

let to_string e = Fmt.str "%a" pp e

(* Columns referenced by an expression, in occurrence order, deduplicated. *)
let columns e =
  let acc = ref [] in
  let add c = if not (List.mem c !acc) then acc := c :: !acc in
  let rec go = function
    | Const _ -> ()
    | Col c -> add c
    | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) -> go a; go b
    | Not a | Is_null a -> go a
    | Udf (_, args) -> List.iter go args
  in
  go e;
  List.rev !acc

(* Relation aliases an expression depends on. *)
let relations e =
  columns e |> List.map (fun c -> c.rel)
  |> List.sort_uniq String.compare

exception Type_error of string

let arith op a b =
  let open Value in
  match a, b with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> (
    match op with
    | Add -> Int (x + y)
    | Sub -> Int (x - y)
    | Mul -> Int (x * y)
    | Div -> if y = 0 then Null else Int (x / y)
    | Mod -> if y = 0 then Null else Int (x mod y))
  | (Int _ | Float _), (Int _ | Float _) ->
    let x = Option.get (to_float a) and y = Option.get (to_float b) in
    (match op with
     | Add -> Float (x +. y)
     | Sub -> Float (x -. y)
     | Mul -> Float (x *. y)
     | Div -> if y = 0. then Null else Float (x /. y)
     | Mod -> if y = 0. then Null else Float (Float.rem x y))
  | Str x, Str y when op = Add -> Str (x ^ y)
  | (Bool _ | Str _), _ | _, (Bool _ | Str _) ->
    raise (Type_error
             (Fmt.str "arith %s on %a, %a" (binop_name op) Value.pp a Value.pp b))

let compare_op op c =
  match op with
  | Eq -> c = 0 | Neq -> c <> 0 | Lt -> c < 0 | Le -> c <= 0
  | Gt -> c > 0 | Ge -> c >= 0

(* Three-valued boolean combinators on Value.t (Null = UNKNOWN). *)
let v3_and a b =
  let open Value in
  match a, b with
  | Bool false, _ | _, Bool false -> Bool false
  | Bool true, x | x, Bool true -> x
  | Null, Null -> Null
  | _ -> raise (Type_error "AND on non-boolean")

let v3_or a b =
  let open Value in
  match a, b with
  | Bool true, _ | _, Bool true -> Bool true
  | Bool false, x | x, Bool false -> x
  | Null, Null -> Null
  | _ -> raise (Type_error "OR on non-boolean")

let v3_not = function
  | Value.Bool b -> Value.Bool (not b)
  | Value.Null -> Value.Null
  | Value.Int _ | Value.Float _ | Value.Str _ ->
    raise (Type_error "NOT on non-boolean")

(* Compile to a closure over the tuple, resolving columns against [schema]. *)
let rec compile (schema : Schema.t) (e : t) : Tuple.t -> Value.t =
  match e with
  | Const v -> fun _ -> v
  | Col { rel; col } ->
    let i =
      try Schema.index_of schema ~rel ~name:col
      with Not_found ->
        raise (Type_error
                 (Fmt.str "unknown column %s.%s in schema %a" rel col
                    Schema.pp schema))
    in
    fun t -> Tuple.get t i
  | Binop (op, a, b) ->
    let fa = compile schema a and fb = compile schema b in
    fun t -> arith op (fa t) (fb t)
  | Cmp (op, a, b) ->
    let fa = compile schema a and fb = compile schema b in
    fun t ->
      (match Value.sql_cmp (fa t) (fb t) with
       | None -> Value.Null
       | Some c -> Value.Bool (compare_op op c))
  | And (a, b) ->
    let fa = compile schema a and fb = compile schema b in
    fun t -> v3_and (fa t) (fb t)
  | Or (a, b) ->
    let fa = compile schema a and fb = compile schema b in
    fun t -> v3_or (fa t) (fb t)
  | Not a ->
    let fa = compile schema a in
    fun t -> v3_not (fa t)
  | Is_null a ->
    let fa = compile schema a in
    fun t -> Value.Bool (Value.is_null (fa t))
  | Udf (u, args) ->
    let fs = List.map (compile schema) args in
    fun t -> u.udf_fn (List.map (fun f -> f t) fs)

let eval schema tuple e = compile schema e tuple

(* Predicate evaluation: UNKNOWN rejects the tuple, as in SQL WHERE. *)
let holds schema e =
  let f = compile schema e in
  fun t -> match f t with Value.Bool b -> b | _ -> false

(* Two-input compilation for join operators: columns resolve against
   [left @ right] exactly as [compile (Schema.concat left right)] would —
   same lookup, same ambiguity failures — but each reference is pinned to
   (side, offset) so evaluation reads the two input tuples directly,
   without materializing their concatenation. *)
let compile2 (left : Schema.t) (right : Schema.t) (e : t) :
  Tuple.t -> Tuple.t -> Value.t =
  let nl = Schema.arity left in
  let combined = Schema.concat left right in
  let rec go e =
    match e with
    | Const v -> fun _ _ -> v
    | Col { rel; col } ->
      let i =
        try Schema.index_of combined ~rel ~name:col
        with Not_found ->
          raise (Type_error
                   (Fmt.str "unknown column %s.%s in schema %a" rel col
                      Schema.pp combined))
      in
      if i < nl then fun a _ -> Tuple.get a i
      else
        let j = i - nl in
        fun _ b -> Tuple.get b j
    | Binop (op, a, b) ->
      let fa = go a and fb = go b in
      fun x y -> arith op (fa x y) (fb x y)
    | Cmp (op, a, b) ->
      let fa = go a and fb = go b in
      fun x y ->
        (match Value.sql_cmp (fa x y) (fb x y) with
         | None -> Value.Null
         | Some c -> Value.Bool (compare_op op c))
    | And (a, b) ->
      let fa = go a and fb = go b in
      fun x y -> v3_and (fa x y) (fb x y)
    | Or (a, b) ->
      let fa = go a and fb = go b in
      fun x y -> v3_or (fa x y) (fb x y)
    | Not a ->
      let fa = go a in
      fun x y -> v3_not (fa x y)
    | Is_null a ->
      let fa = go a in
      fun x y -> Value.Bool (Value.is_null (fa x y))
    | Udf (u, args) ->
      let fs = List.map go args in
      fun x y -> u.udf_fn (List.map (fun f -> f x y) fs)
  in
  go e

let holds2 left right e =
  let f = compile2 left right e in
  fun a b -> match f a b with Value.Bool b -> b | _ -> false

(* ------------------------------------------------------------------ *)
(* Aggregates *)

type agg =
  | Count_star
  | Count of t
  | Sum of t
  | Min of t
  | Max of t
  | Avg of t

let agg_arg = function
  | Count_star -> None
  | Count e | Sum e | Min e | Max e | Avg e -> Some e

let pp_agg ppf = function
  | Count_star -> Fmt.string ppf "COUNT(*)"
  | Count e -> Fmt.pf ppf "COUNT(%a)" pp e
  | Sum e -> Fmt.pf ppf "SUM(%a)" pp e
  | Min e -> Fmt.pf ppf "MIN(%a)" pp e
  | Max e -> Fmt.pf ppf "MAX(%a)" pp e
  | Avg e -> Fmt.pf ppf "AVG(%a)" pp e

(* Streaming aggregate state: fold values, then finalize.  SUM/AVG follow
   SQL semantics (NULL on empty/no non-null input; COUNT is 0). *)
type agg_state = { mutable count : int; mutable sum : float;
                   mutable any_float : bool;
                   mutable minv : Value.t; mutable maxv : Value.t }

let agg_init () =
  { count = 0; sum = 0.; any_float = false;
    minv = Value.Null; maxv = Value.Null }

let agg_step st (v : Value.t) =
  if not (Value.is_null v) then begin
    st.count <- st.count + 1;
    (match v with
     | Value.Int i -> st.sum <- st.sum +. float_of_int i
     | Value.Float f -> st.sum <- st.sum +. f; st.any_float <- true
     | Value.Bool _ | Value.Str _ | Value.Null -> ());
    if Value.is_null st.minv || Value.compare v st.minv < 0 then st.minv <- v;
    if Value.is_null st.maxv || Value.compare v st.maxv > 0 then st.maxv <- v
  end

(* Unboxed integer step: identical state evolution to
   [agg_step st (Value.Int k)], but the argument is never boxed — the
   min/max slots allocate a [Value.Int] only when they actually change. *)
let agg_step_int st (k : int) =
  st.count <- st.count + 1;
  st.sum <- st.sum +. float_of_int k;
  (match st.minv with
   | Value.Null -> st.minv <- Value.Int k
   | Value.Int m -> if k < m then st.minv <- Value.Int k
   | v -> if Value.compare (Value.Int k) v < 0 then st.minv <- Value.Int k);
  (match st.maxv with
   | Value.Null -> st.maxv <- Value.Int k
   | Value.Int m -> if k > m then st.maxv <- Value.Int k
   | v -> if Value.compare (Value.Int k) v > 0 then st.maxv <- Value.Int k)

let agg_final (a : agg) st : Value.t =
  match a with
  | Count_star | Count _ -> Value.Int st.count
  | Sum _ ->
    if st.count = 0 then Value.Null
    else if st.any_float then Value.Float st.sum
    else Value.Int (int_of_float st.sum)
  | Min _ -> st.minv
  | Max _ -> st.maxv
  | Avg _ ->
    if st.count = 0 then Value.Null
    else Value.Float (st.sum /. float_of_int st.count)

(* Combine two partial states (used by staged aggregation, Fig 4c).  Only
   valid for aggregates satisfying Agg(S ∪ S') = combine(Agg S, Agg S'). *)
let agg_combine st st' =
  { count = st.count + st'.count;
    sum = st.sum +. st'.sum;
    any_float = st.any_float || st'.any_float;
    minv =
      (if Value.is_null st.minv then st'.minv
       else if Value.is_null st'.minv then st.minv
       else if Value.compare st.minv st'.minv <= 0 then st.minv else st'.minv);
    maxv =
      (if Value.is_null st.maxv then st'.maxv
       else if Value.is_null st'.maxv then st.maxv
       else if Value.compare st.maxv st'.maxv >= 0 then st.maxv else st'.maxv) }

(* Result type of an aggregate, given its argument type. *)
let agg_ty (a : agg) (arg_ty : Value.ty option) : Value.ty =
  match a, arg_ty with
  | (Count_star | Count _), _ -> Value.Tint
  | Sum _, Some Value.Tfloat -> Value.Tfloat
  | Sum _, _ -> Value.Tint
  | Avg _, _ -> Value.Tfloat
  | (Min _ | Max _), Some ty -> ty
  | (Min _ | Max _), None -> Value.Tint
