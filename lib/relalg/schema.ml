(* Schemas: ordered lists of columns, each qualified by a relation alias.
   Column positions are resolved once at plan-build time (see [index_of]);
   evaluation then works on plain value arrays. *)

type column = {
  rel : string;  (* relation alias, e.g. "E" or "Emp" *)
  name : string; (* column name, e.g. "sal" *)
  ty : Value.ty;
  nullable : bool; (* false only when the column provably never holds NULL *)
}

type t = column list

let column ~rel ~name ~ty = { rel; name; ty; nullable = true }

let with_nullable nullable c = { c with nullable }

let arity (s : t) = List.length s

let matches ~rel ~name (c : column) =
  c.name = name && (rel = "" || c.rel = rel)

(* Position of a (possibly unqualified) column reference. Raises [Not_found]
   if absent, [Failure] if an unqualified reference is ambiguous. *)
let index_of (s : t) ~rel ~name =
  let hits =
    List.filteri (fun _ c -> matches ~rel ~name c) s
    |> fun cs -> List.length cs
  in
  if rel = "" && hits > 1 then
    failwith (Printf.sprintf "ambiguous column reference: %s" name);
  let rec go i = function
    | [] -> raise Not_found
    | c :: rest -> if matches ~rel ~name c then i else go (i + 1) rest
  in
  go 0 s

let find_opt (s : t) ~rel ~name =
  match index_of s ~rel ~name with
  | i -> Some (i, List.nth s i)
  | exception Not_found -> None

let mem (s : t) ~rel ~name = find_opt s ~rel ~name <> None

(* Concatenation for joins: left columns first. *)
let concat (a : t) (b : t) : t = a @ b

(* Re-qualify every column under a new alias (view renaming). *)
let requalify (s : t) ~rel = List.map (fun c -> { c with rel }) s

let pp_column ppf c =
  if c.rel = "" then Fmt.pf ppf "%s:%s" c.name (Value.ty_name c.ty)
  else Fmt.pf ppf "%s.%s:%s" c.rel c.name (Value.ty_name c.ty)

let pp ppf s = Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") pp_column) s
