(* Logical operator trees ("query trees" in the paper, Figure 2).

   Scan nodes carry their schema so that schema inference needs no catalog.
   Join kinds cover the operators Sections 4.1.2 and 4.2.2 reason about:
   inner and one-sided outer joins, plus semi/anti joins produced by
   subquery unnesting. *)

type join_kind =
  | Inner
  | Left_outer
  | Semi  (* left tuples with at least one match; left attributes only *)
  | Anti  (* left tuples with no match; left attributes only *)

type dir = Asc | Desc

type sort_key = Expr.t * dir

type t =
  | Scan of { table : string; alias : string; schema : Schema.t }
  | Select of Expr.t * t
  | Project of (Expr.t * string) list * t
  | Join of join_kind * Expr.t * t * t
  | Group_by of group_by
  | Distinct of t
  | Order_by of sort_key list * t

and group_by = {
  keys : (Expr.t * string) list;
  aggs : (Expr.agg * string) list;
  input : t;
}

let join_kind_name = function
  | Inner -> "JOIN"
  | Left_outer -> "LEFT OUTER JOIN"
  | Semi -> "SEMIJOIN"
  | Anti -> "ANTIJOIN"

(* Nullability of an expression's result given the input schema: plain
   column references and NULL-free constants inherit; everything else is
   conservatively nullable.  (Deeper reasoning lives in the [analysis]
   library; the schema just carries the cheap, always-sound core so that
   catalog NOT NULL declarations survive projections.) *)
let expr_nullable (s : Schema.t) (e : Expr.t) : bool =
  match e with
  | Expr.Col c -> (
    match Schema.find_opt s ~rel:c.Expr.rel ~name:c.Expr.col with
    | Some (_, col) -> col.Schema.nullable
    | None -> true
    | exception Failure _ -> true)
  | Expr.Const v -> Value.is_null v
  | _ -> true

let agg_nullable (s : Schema.t) (a : Expr.agg) : bool =
  match a with
  | Expr.Count_star | Expr.Count _ -> false (* COUNT is never NULL *)
  | Expr.Sum _ | Expr.Min _ | Expr.Max _ | Expr.Avg _ ->
    ignore s;
    true (* NULL over an empty/all-NULL group *)

(* Output schema.  Projection and grouping introduce unqualified columns
   named by their aliases; [requalify] can re-introduce a qualifier when an
   operator result is used as a named view. *)
let rec schema (t : t) : Schema.t =
  match t with
  | Scan { schema = s; _ } -> s
  | Select (_, input) -> schema input
  | Join ((Semi | Anti), _, l, _) -> schema l
  | Join (Left_outer, _, l, r) ->
    (* unmatched left tuples pad the right side with NULLs *)
    Schema.concat (schema l)
      (List.map (fun c -> { c with Schema.nullable = true }) (schema r))
  | Join (Inner, _, l, r) -> Schema.concat (schema l) (schema r)
  | Project (items, input) ->
    let s = schema input in
    List.map
      (fun (e, alias) ->
         Schema.with_nullable (expr_nullable s e)
           (Schema.column ~rel:"" ~name:alias ~ty:(Typing.infer s e)))
      items
  | Group_by { keys; aggs; input } ->
    let s = schema input in
    List.map
      (fun (e, alias) ->
         Schema.with_nullable (expr_nullable s e)
           (Schema.column ~rel:"" ~name:alias ~ty:(Typing.infer s e)))
      keys
    @ List.map
        (fun (a, alias) ->
           Schema.with_nullable (agg_nullable s a)
             (Schema.column ~rel:"" ~name:alias ~ty:(Typing.infer_agg s a)))
        aggs
  | Distinct input -> schema input
  | Order_by (_, input) -> schema input

(* Relation aliases contributing base tuples to this subtree. *)
let rec base_aliases (t : t) : string list =
  match t with
  | Scan { alias; _ } -> [ alias ]
  | Select (_, i) | Project (_, i) | Distinct i | Order_by (_, i) ->
    base_aliases i
  | Join ((Semi | Anti), _, l, _) -> base_aliases l
  | Join (_, _, l, r) -> base_aliases l @ base_aliases r
  | Group_by { input; _ } -> base_aliases input

let rec pp ppf (t : t) =
  let kid ppf t = Fmt.pf ppf "@,@[<v 2>  %a@]" pp t in
  match t with
  | Scan { table; alias; _ } ->
    if table = alias then Fmt.pf ppf "Scan %s" table
    else Fmt.pf ppf "Scan %s AS %s" table alias
  | Select (p, i) -> Fmt.pf ppf "@[<v>Select %a%a@]" Expr.pp p kid i
  | Project (items, i) ->
    Fmt.pf ppf "@[<v>Project %a%a@]"
      Fmt.(list ~sep:(any ", ")
             (fun ppf (e, a) -> Fmt.pf ppf "%a AS %s" Expr.pp e a))
      items kid i
  | Join (k, p, l, r) ->
    Fmt.pf ppf "@[<v>%s ON %a%a%a@]" (join_kind_name k) Expr.pp p kid l kid r
  | Group_by { keys; aggs; input } ->
    Fmt.pf ppf "@[<v>GroupBy [%a] aggs [%a]%a@]"
      Fmt.(list ~sep:(any ", ") (fun ppf (e, a) -> Fmt.pf ppf "%a AS %s" Expr.pp e a))
      keys
      Fmt.(list ~sep:(any ", ")
             (fun ppf (g, a) -> Fmt.pf ppf "%a AS %s" Expr.pp_agg g a))
      aggs kid input
  | Distinct i -> Fmt.pf ppf "@[<v>Distinct%a@]" kid i
  | Order_by (keys, i) ->
    Fmt.pf ppf "@[<v>OrderBy [%a]%a@]"
      Fmt.(list ~sep:(any ", ")
             (fun ppf (e, d) ->
                Fmt.pf ppf "%a %s" Expr.pp e
                  (match d with Asc -> "ASC" | Desc -> "DESC")))
      keys kid i

let to_string t = Fmt.str "%a" pp t

(* Count of operator nodes, used by enumeration-effort experiments. *)
let rec size = function
  | Scan _ -> 1
  | Select (_, i) | Project (_, i) | Distinct i | Order_by (_, i) -> 1 + size i
  | Join (_, _, l, r) -> 1 + size l + size r
  | Group_by { input; _ } -> 1 + size input
