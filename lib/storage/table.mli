(** Heap tables: append-only in-memory tuple stores with a page model.
    Row ids are dense 0-based positions; row [i] lives on page
    [i / tuples_per_page]. *)

type t = {
  name : string;
  schema : Relalg.Schema.t;  (** columns qualified by the table name *)
  rows : Relalg.Tuple.t Vec.t;
}

(** [non_null] names columns declared NOT NULL; they are recorded as
    [nullable = false] in the schema.  Inserts are not checked — the
    declaration is a promise the loader keeps. *)
val create :
  ?non_null:string list ->
  name:string ->
  columns:(string * Relalg.Value.ty) list ->
  unit ->
  t

(** @raise Invalid_argument on arity mismatch. *)
val insert : t -> Relalg.Tuple.t -> unit

val insert_all : t -> Relalg.Tuple.t list -> unit
val row_count : t -> int

(** Tuple at row id [rid]. *)
val get : t -> int -> Relalg.Tuple.t

val tuples_per_page : t -> int
val page_count : t -> int

(** Page number holding a row id. *)
val page_of_row : t -> int -> int

val iter : (Relalg.Tuple.t -> unit) -> t -> unit
val iteri : (int -> Relalg.Tuple.t -> unit) -> t -> unit
val to_list : t -> Relalg.Tuple.t list

(** Position of a column within this table's schema. *)
val column_index : t -> string -> int

val pp : Format.formatter -> t -> unit
