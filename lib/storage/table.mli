(** Heap tables: append-only in-memory tuple stores with a page model.
    Row ids are dense 0-based positions; row [i] lives on page
    [i / tuples_per_page]. *)

type t = {
  name : string;
  schema : Relalg.Schema.t;  (** columns qualified by the table name *)
  rows : Relalg.Tuple.t Vec.t;
  mutable rows_view : Relalg.Tuple.t array option;
      (** memoized {!rows_array} view; stale iff its length differs from
          the live row count (tables are append-only) *)
}

(** [non_null] names columns declared NOT NULL; they are recorded as
    [nullable = false] in the schema.  Inserts are not checked — the
    declaration is a promise the loader keeps. *)
val create :
  ?non_null:string list ->
  name:string ->
  columns:(string * Relalg.Value.ty) list ->
  unit ->
  t

(** @raise Invalid_argument on arity mismatch. *)
val insert : t -> Relalg.Tuple.t -> unit

val insert_all : t -> Relalg.Tuple.t list -> unit
val row_count : t -> int

(** Tuple at row id [rid]. *)
val get : t -> int -> Relalg.Tuple.t

(** Shared immutable array view of all rows, memoized per table size —
    the bulk accessor the vectorized engines scan from.  Read-only:
    callers must never write through it. *)
val rows_array : t -> Relalg.Tuple.t array

val tuples_per_page : t -> int
val page_count : t -> int

(** Page number holding a row id. *)
val page_of_row : t -> int -> int

val iter : (Relalg.Tuple.t -> unit) -> t -> unit
val iteri : (int -> Relalg.Tuple.t -> unit) -> t -> unit
val to_list : t -> Relalg.Tuple.t list

(** Position of a column within this table's schema. *)
val column_index : t -> string -> int

val pp : Format.formatter -> t -> unit
