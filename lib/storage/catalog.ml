(* The catalog maps table names to their storage and indexes.  Statistics
   are maintained by the [stats] library in a parallel registry so that the
   storage layer stays independent of estimation concerns. *)

type entry = { table : Table.t; mutable indexes : Btree.t list }

type t = { tables : (string, entry) Hashtbl.t }

let create () = { tables = Hashtbl.create 16 }

let add_table cat (table : Table.t) =
  if Hashtbl.mem cat.tables table.Table.name then
    invalid_arg ("Catalog.add_table: duplicate " ^ table.Table.name);
  Hashtbl.replace cat.tables table.Table.name { table; indexes = [] }

let create_table ?non_null cat ~name ~columns =
  let t = Table.create ?non_null ~name ~columns () in
  add_table cat t;
  t

let find cat name =
  match Hashtbl.find_opt cat.tables name with
  | Some e -> e
  | None -> invalid_arg ("Catalog.find: no such table " ^ name)

let find_opt cat name = Hashtbl.find_opt cat.tables name

let table cat name = (find cat name).table

let mem cat name = Hashtbl.mem cat.tables name

(* Create a secondary (or clustered) index; composite keys are supported
   via [columns]. *)
let create_index cat ?(clustered = false) ?fanout ?columns ~table:tname
    ?column () =
  let columns =
    match columns, column with
    | Some cs, None -> cs
    | None, Some c -> [ c ]
    | Some cs, Some c -> cs @ [ c ]
    | None, None -> invalid_arg "Catalog.create_index: no columns"
  in
  let e = find cat tname in
  let name = Printf.sprintf "idx_%s_%s" tname (String.concat "_" columns) in
  let idx = Btree.build ?fanout ~name ~clustered e.table ~columns in
  e.indexes <- e.indexes @ [ idx ];
  idx

let indexes cat name = (find cat name).indexes

(* Index whose leading column is [column]. *)
let index_on cat ~table ~column =
  List.find_opt (fun (i : Btree.t) -> Btree.column i = column)
    (indexes cat table)

(* Index by exact name. *)
let index_named cat ~table ~name =
  List.find_opt (fun (i : Btree.t) -> i.Btree.name = name) (indexes cat table)

(* Drop a table (used for temporaries materialized during execution). *)
let remove_table cat name = Hashtbl.remove cat.tables name

let table_names cat =
  Hashtbl.fold (fun k _ acc -> k :: acc) cat.tables []
  |> List.sort String.compare

(* Scan node for the logical algebra, with columns re-qualified under the
   query alias. *)
let scan cat ?alias name : Relalg.Algebra.t =
  let t = table cat name in
  let alias = Option.value alias ~default:name in
  Relalg.Algebra.Scan
    { table = name;
      alias;
      schema = Relalg.Schema.requalify t.Table.schema ~rel:alias }
