(* Heap tables: an append-only in-memory tuple store with a page model.
   Row ids are dense 0-based positions; the page of row [i] is
   [i / tuples_per_page], which lets scans and index lookups charge the
   buffer-pool simulator with realistic page access patterns. *)

open Relalg

type t = {
  name : string;
  schema : Schema.t; (* columns qualified by the table name *)
  rows : Tuple.t Vec.t;
  mutable rows_view : Tuple.t array option;
      (* memoized array view; tables are append-only, so a cached view
         is stale iff its length differs from the live row count *)
}

let create ?(non_null = []) ~name ~(columns : (string * Value.ty) list) () : t
  =
  let schema =
    List.map
      (fun (cn, ty) ->
         Schema.with_nullable
           (List.mem cn non_null |> not)
           (Schema.column ~rel:name ~name:cn ~ty))
      columns
  in
  { name; schema; rows = Vec.create (); rows_view = None }

let insert t (tuple : Tuple.t) =
  if Tuple.arity tuple <> Schema.arity t.schema then
    invalid_arg
      (Printf.sprintf "Table.insert %s: arity %d <> %d" t.name
         (Tuple.arity tuple) (Schema.arity t.schema));
  Vec.push t.rows tuple

let insert_all t tuples = List.iter (insert t) tuples

let row_count t = Vec.length t.rows

let get t rid = Vec.get t.rows rid

(* Shared immutable array view of all rows, built once per table size.
   Callers must treat it as read-only. *)
let rows_array t =
  match t.rows_view with
  | Some a when Array.length a = Vec.length t.rows -> a
  | _ ->
    let a = Array.init (Vec.length t.rows) (Vec.get t.rows) in
    t.rows_view <- Some a;
    a

let tuples_per_page t = Page.tuples_per_page t.schema

let page_count t = Page.pages_for ~rows:(row_count t) t.schema

let page_of_row t rid = rid / tuples_per_page t

let iter f t = Vec.iter f t.rows

and iteri f t =
  for rid = 0 to row_count t - 1 do
    f rid (get t rid)
  done

let to_list t = Vec.to_list t.rows

(* Column position within this table's schema. *)
let column_index t name =
  Schema.index_of t.schema ~rel:t.name ~name

let pp ppf t =
  Fmt.pf ppf "%s%a (%d rows, %d pages)" t.name Schema.pp t.schema
    (row_count t) (page_count t)
