(** The catalog: table storage and indexes by name.  Statistics live in the
    [stats] library's parallel registry so the storage layer stays
    independent of estimation. *)

type entry = { table : Table.t; mutable indexes : Btree.t list }

type t

val create : unit -> t

(** @raise Invalid_argument on duplicate names. *)
val add_table : t -> Table.t -> unit

(** [non_null] is passed through to {!Table.create}. *)
val create_table :
  ?non_null:string list ->
  t ->
  name:string ->
  columns:(string * Relalg.Value.ty) list ->
  Table.t

(** @raise Invalid_argument when absent. *)
val find : t -> string -> entry

val find_opt : t -> string -> entry option

(** @raise Invalid_argument when absent. *)
val table : t -> string -> Table.t

val mem : t -> string -> bool

(** Create an index; composite keys via [columns], single keys via
    [column] (one of the two must be given). *)
val create_index :
  t -> ?clustered:bool -> ?fanout:int -> ?columns:string list ->
  table:string -> ?column:string -> unit -> Btree.t

(** Drop a table (used for temporaries materialized during execution). *)
val remove_table : t -> string -> unit

val indexes : t -> string -> Btree.t list

(** Index whose leading column is [column], if any. *)
val index_on : t -> table:string -> column:string -> Btree.t option

(** Index by exact name. *)
val index_named : t -> table:string -> name:string -> Btree.t option

(** All table names, sorted. *)
val table_names : t -> string list

(** A logical scan node with columns re-qualified under [alias]
    (default: the table name). *)
val scan : t -> ?alias:string -> string -> Relalg.Algebra.t
