(** Synthetic databases for examples, tests and experiments: the paper's
    Emp/Dept schema, an OLAP star schema, and chain/cycle/star/clique join
    workloads. *)

(** {2 Emp/Dept (Sections 4.2 and 4.3)} *)

type emp_dept = {
  cat : Storage.Catalog.t;
  db : Stats.Table_stats.db;
  emps : int;
  depts : int;
}

(** Emp(eid, name, did, dept_name, sal, age, mgr) and Dept(did, name, loc,
    budget, num_machines, mgr); [empty_dept_frac] controls departments
    with no employees (needed by the count-bug experiments).  Indexes:
    Emp(eid) clustered, Emp(did), Dept(did) clustered. *)
val emp_dept :
  ?seed:int -> ?emps:int -> ?depts:int -> ?empty_dept_frac:float -> unit ->
  emp_dept

(** {2 OLAP star schema (Section 4.1.1)} *)

type star = {
  cat : Storage.Catalog.t;
  db : Stats.Table_stats.db;
  fact : string;  (** "Sales"; fk columns are <dim>_id *)
  dims : string list;
}

(** Sales fact plus dimension tables; per-fk indexes and a composite index
    over all foreign keys (the access path that makes dimension Cartesian
    products worthwhile). *)
val star :
  ?seed:int -> ?fact_rows:int -> ?dim_rows:int -> ?dims:int -> unit -> star

(** {2 Chain / cycle / star / clique join workloads} *)

type shape = Chain_q | Cycle_q | Star_q | Clique_q

type join_pieces = {
  jcat : Storage.Catalog.t;
  jdb : Stats.Table_stats.db;
  relations : (string * string) list;  (** (alias, table) *)
  predicates : Relalg.Expr.t list;
}

(** n relations R1..Rn of [rows] tuples with columns a, b, c; predicates
    follow the requested query-graph shape. *)
val join_shape :
  ?seed:int -> ?rows:int -> shape:shape -> n:int -> unit -> join_pieces
