(** Random data generation: uniform and Zipfian distributions, seeded for
    reproducible experiments. *)

val rng : int -> Random.State.t

(** Derive an independent child seed from a parent [seed] and a stream
    index — the fuzzer gives every table and every query its own stream so
    the whole workload replays from one explicit integer (never seeded from
    wall-clock). *)
val derive : int -> int -> int

(** Uniform integer in [lo, hi]. *)
val uniform_int : Random.State.t -> lo:int -> hi:int -> int

(** True with probability [p]. *)
val chance : Random.State.t -> float -> bool

type zipf

(** Zipfian over ranks 1..n with exponent [skew] (0 = uniform). *)
val zipf_make : n:int -> skew:float -> zipf

val zipf_draw : Random.State.t -> zipf -> int

(** [size] Zipfian draws over ranks 1..n. *)
val zipf_array : Random.State.t -> n:int -> size:int -> skew:float -> int array

val pick : Random.State.t -> 'a list -> 'a

val name_pool : string list
val city_pool : string list
