(* Synthetic databases used by the examples, tests and experiments:
   - the paper's running Emp/Dept schema (Sections 4.2, 4.3);
   - an OLAP star schema (Section 4.1.1's Cartesian-product discussion);
   - chain/cycle/star/clique join workloads over uniform relations. *)

open Relalg

let v_int i = Value.Int i
let v_str s = Value.Str s

(* ------------------------------------------------------------------ *)
(* Emp/Dept *)

type emp_dept = {
  cat : Storage.Catalog.t;
  db : Stats.Table_stats.db;
  emps : int;
  depts : int;
}

(* Emp(eid, name, did, dept_name, sal, age, mgr) and
   Dept(did, name, loc, budget, num_machines, mgr).
   [empty_dept_frac] controls departments with no employees (the count-bug
   experiment needs them).  Indexes: Emp(did), Emp(eid) clustered,
   Dept(did) clustered. *)
let emp_dept ?(seed = 42) ?(emps = 2000) ?(depts = 50)
    ?(empty_dept_frac = 0.1) () : emp_dept =
  let st = Gen.rng seed in
  let cat = Storage.Catalog.create () in
  let dept =
    Storage.Catalog.create_table ~non_null:[ "did"; "name" ] cat ~name:"Dept"
      ~columns:
        [ ("did", Value.Tint); ("name", Value.Tstring); ("loc", Value.Tstring);
          ("budget", Value.Tint); ("num_machines", Value.Tint);
          ("mgr", Value.Tint) ]
  in
  let emp =
    Storage.Catalog.create_table ~non_null:[ "eid"; "did" ] cat ~name:"Emp"
      ~columns:
        [ ("eid", Value.Tint); ("name", Value.Tstring); ("did", Value.Tint);
          ("dept_name", Value.Tstring); ("sal", Value.Tint);
          ("age", Value.Tint); ("mgr", Value.Tint) ]
  in
  let populated =
    max 1 (int_of_float (float_of_int depts *. (1. -. empty_dept_frac)))
  in
  let dept_name d = Printf.sprintf "dept%02d" d in
  for d = 0 to depts - 1 do
    Storage.Table.insert dept
      (Tuple.of_list
         [ v_int d; v_str (dept_name d); v_str (Gen.pick st Gen.city_pool);
           v_int (Gen.uniform_int st ~lo:10 ~hi:500 * 1000);
           v_int (Gen.uniform_int st ~lo:0 ~hi:60);
           v_int (Gen.uniform_int st ~lo:0 ~hi:(max 1 emps - 1)) ])
  done;
  for e = 0 to emps - 1 do
    let d = Gen.uniform_int st ~lo:0 ~hi:(populated - 1) in
    Storage.Table.insert emp
      (Tuple.of_list
         [ v_int e; v_str (Gen.pick st Gen.name_pool); v_int d;
           v_str (dept_name d);
           v_int (Gen.uniform_int st ~lo:30 ~hi:180 * 1000);
           v_int (Gen.uniform_int st ~lo:21 ~hi:65);
           v_int (Gen.uniform_int st ~lo:0 ~hi:(emps - 1)) ])
  done;
  ignore (Storage.Catalog.create_index cat ~clustered:true ~table:"Emp" ~column:"eid" ());
  ignore (Storage.Catalog.create_index cat ~table:"Emp" ~column:"did" ());
  ignore (Storage.Catalog.create_index cat ~clustered:true ~table:"Dept" ~column:"did" ());
  let db = Stats.Table_stats.analyze_catalog cat in
  { cat; db; emps; depts }

(* ------------------------------------------------------------------ *)
(* OLAP star schema: Sales(fact) with [dims] dimension tables *)

type star = {
  cat : Storage.Catalog.t;
  db : Stats.Table_stats.db;
  fact : string;
  dims : string list; (* dimension table names, fk column is <dim>_id *)
}

let star ?(seed = 7) ?(fact_rows = 5000) ?(dim_rows = 20) ?(dims = 3) () :
  star =
  let st = Gen.rng seed in
  let cat = Storage.Catalog.create () in
  let dim_names = List.init dims (fun i -> Printf.sprintf "Dim%d" (i + 1)) in
  List.iter
    (fun name ->
       let t =
         Storage.Catalog.create_table ~non_null:[ "id" ] cat ~name
           ~columns:
             [ ("id", Value.Tint); ("label", Value.Tstring);
               ("weight", Value.Tint) ]
       in
       for i = 0 to dim_rows - 1 do
         Storage.Table.insert t
           (Tuple.of_list
              [ v_int i; v_str (Printf.sprintf "%s_%d" name i);
                v_int (Gen.uniform_int st ~lo:1 ~hi:100) ])
       done)
    dim_names;
  let fact_cols =
    ("sid", Value.Tint)
    :: List.map
         (fun name -> (String.lowercase_ascii name ^ "_id", Value.Tint))
         dim_names
    @ [ ("amount", Value.Tint) ]
  in
  let fact =
    Storage.Catalog.create_table
      ~non_null:(List.map fst fact_cols)
      cat ~name:"Sales" ~columns:fact_cols
  in
  for s = 0 to fact_rows - 1 do
    Storage.Table.insert fact
      (Tuple.of_list
         (v_int s
          :: List.map (fun _ -> v_int (Gen.uniform_int st ~lo:0 ~hi:(dim_rows - 1)))
               dim_names
          @ [ v_int (Gen.uniform_int st ~lo:1 ~hi:1000) ]))
  done;
  List.iter
    (fun name ->
       ignore
         (Storage.Catalog.create_index cat ~clustered:true ~table:name
            ~column:"id" ());
       ignore
         (Storage.Catalog.create_index cat ~table:"Sales"
            ~column:(String.lowercase_ascii name ^ "_id") ()))
    dim_names;
  (* composite index over all foreign keys: the access path that makes
     dimension Cartesian products worthwhile (Section 4.1.1) *)
  ignore
    (Storage.Catalog.create_index cat ~table:"Sales"
       ~columns:
         (List.map (fun n -> String.lowercase_ascii n ^ "_id") dim_names)
       ());
  let db = Stats.Table_stats.analyze_catalog cat in
  { cat; db; fact = "Sales"; dims = dim_names }

(* ------------------------------------------------------------------ *)
(* Chain / cycle / star / clique join workloads over n relations *)

type shape = Chain_q | Cycle_q | Star_q | Clique_q

(* The SPJ type lives in the systemr library; to keep workload free of that
   dependency we expose the raw pieces instead. *)
type join_pieces = {
  jcat : Storage.Catalog.t;
  jdb : Stats.Table_stats.db;
  relations : (string * string) list; (* alias, table *)
  predicates : Expr.t list;
}

(* n relations R1..Rn with [rows] tuples each; columns a and b; predicates
   follow the requested query-graph shape. *)
let join_shape ?(seed = 11) ?(rows = 500) ~shape ~n () : join_pieces =
  let st = Gen.rng seed in
  let cat = Storage.Catalog.create () in
  let names = List.init n (fun i -> Printf.sprintf "R%d" (i + 1)) in
  List.iter
    (fun name ->
       let t =
         Storage.Catalog.create_table cat ~name
           ~columns:[ ("a", Value.Tint); ("b", Value.Tint); ("c", Value.Tint) ]
       in
       for _ = 1 to rows do
         Storage.Table.insert t
           (Tuple.of_list
              [ v_int (Gen.uniform_int st ~lo:0 ~hi:(rows / 5));
                v_int (Gen.uniform_int st ~lo:0 ~hi:(rows / 5));
                v_int (Gen.uniform_int st ~lo:0 ~hi:999) ])
       done)
    names;
  let col rel c = Expr.Col { Expr.rel; col = c } in
  let eq a b = Expr.Cmp (Expr.Eq, a, b) in
  let preds =
    match shape with
    | Chain_q ->
      List.init (n - 1) (fun i ->
          eq (col (List.nth names i) "b") (col (List.nth names (i + 1)) "a"))
    | Cycle_q ->
      (* the chain plus the closing Rn-R1 edge *)
      if n < 2 then []
      else
        List.init n (fun i ->
            eq (col (List.nth names i) "b")
              (col (List.nth names ((i + 1) mod n)) "a"))
    | Star_q ->
      List.init (n - 1) (fun i ->
          eq (col (List.nth names 0) "a") (col (List.nth names (i + 1)) "a"))
    | Clique_q ->
      List.concat
        (List.init n (fun i ->
             List.init (n - i - 1) (fun j ->
                 eq (col (List.nth names i) "a")
                   (col (List.nth names (i + j + 1)) "a"))))
  in
  let db = Stats.Table_stats.analyze_catalog cat in
  { jcat = cat; jdb = db;
    relations = List.map (fun nm -> (nm, nm)) names;
    predicates = preds }
