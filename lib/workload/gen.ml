(* Random data generation: uniform and Zipfian distributions, seeded for
   reproducible experiments. *)

let rng seed = Random.State.make [| seed; 0x5eed |]

(* Mix a parent seed with a stream index into an independent child seed
   (splitmix-style finalizer over the native int width).  Every generated
   artifact — each table, each query — draws from [rng (derive seed i)], so
   one CLI-supplied integer reproduces the whole workload and no component
   ever falls back to wall-clock seeding. *)
let derive seed i =
  let h = ref ((seed * 0x9E3779B9) + (i * 0x85EBCA6B) + 0x7F4A7C15) in
  h := (!h lxor (!h lsr 30)) * 0xBF58476D;
  h := (!h lxor (!h lsr 27)) * 0x94D049BB;
  (!h lxor (!h lsr 31)) land max_int

let uniform_int st ~lo ~hi = lo + Random.State.int st (hi - lo + 1)

let chance st p = Random.State.float st 1.0 < p

(* Zipfian over ranks 1..n with exponent [skew] (0 = uniform), via inverse
   CDF on precomputed cumulative weights. *)
type zipf = { cum : float array }

let zipf_make ~n ~skew =
  let w = Array.init n (fun i -> 1. /. (float_of_int (i + 1) ** skew)) in
  let cum = Array.make n 0. in
  let total = Array.fold_left ( +. ) 0. w in
  let acc = ref 0. in
  Array.iteri
    (fun i x ->
       acc := !acc +. x;
       cum.(i) <- !acc /. total)
    w;
  { cum }

let zipf_draw st z =
  let u = Random.State.float st 1.0 in
  let n = Array.length z.cum in
  let rec bs lo hi =
    if lo >= hi then lo + 1
    else
      let mid = (lo + hi) / 2 in
      if z.cum.(mid) < u then bs (mid + 1) hi else bs lo mid
  in
  bs 0 (n - 1)

let zipf_array st ~n ~size ~skew =
  let z = zipf_make ~n ~skew in
  Array.init size (fun _ -> zipf_draw st z)

let pick st xs = List.nth xs (Random.State.int st (List.length xs))

let name_pool =
  [ "alice"; "bob"; "carol"; "dave"; "erin"; "frank"; "grace"; "heidi";
    "ivan"; "judy"; "mallory"; "niaj"; "olivia"; "peggy"; "rupert"; "sybil" ]

let city_pool =
  [ "Denver"; "Seattle"; "Austin"; "Boston"; "Chicago"; "Portland";
    "Atlanta"; "Raleigh" ]
