(** The end-to-end query pipeline:

    QGM block → rewrite rules → derived sources materialized
    block-at-a-time (the Starburst style of optimizing a block at a time) →
    System-R join enumeration on the base-only core → semijoins,
    outerjoins, grouping, having, order, projection → execution.

    Queries whose subquery predicates survive rewriting fall back to the
    tuple-iteration interpreter, so every query runs. *)

type config = {
  rewrites : Rewrite.Rules.t list list;  (** rule classes, run in order *)
  join_config : Systemr.Join_order.config;
  lint : bool;
  (** run the [verify] static checker after every rewrite-rule
      application and on every finished physical plan *)
  engine : [ `Interpreted | `Batch ];
  (** which engine executes physical plans (default [`Batch]); both
      produce bit-identical rows and cost accounting *)
  instrument : bool;
  (** record per-operator runtime statistics and a structured optimizer
      trace (EXPLAIN ANALYZE); off (the default) costs nothing on the
      execution path *)
  analysis : bool;
  (** abstract-interpretation pass (off by default): appends the
      analyzer-backed rewrite rules ([Analysis.Simplify.rules]: folding
      provably-empty subtrees, transitive range closure) as a final rule
      class, and lints every executed physical plan's cardinality
      estimates against the analyzer's sound envelope
      ([est-above-envelope] / [est-below-envelope] warnings,
      [est-zero-nonempty] errors) into [report.diags] *)
  dop : int;
  (** degree of parallelism (default 1).  > 1 executes batch plans with
      the morsel-driven engine ({!Exec.Morsel}), each node running at
      the dop its two-phase segment ({!Parallel.Two_phase.node_dop}) was
      scheduled at; rows and cost accounting stay bit-identical to
      [dop = 1].  Ignored by the interpreted engine, and a no-op on
      OCaml < 5. *)
  morsel_rows : int;
  (** parallel split granularity in rows (default
      {!Exec.Morsel.default_morsel_rows}); tests and the fuzzer shrink
      it to force multi-morsel execution on small tables *)
  chunk_rows : int;
  (** columnar-engine block granularity (default
      {!Exec.Batch.default_chunk_rows}); rows and counters are
      [chunk_rows]-independent — the fuzzer shrinks it to exercise block
      boundaries *)
  estimator :
    [ `Histogram
    | `Feedback of Stats.Feedback.t
    | `Sketch of Stats.Sketch.registry ];
  (** cardinality estimation mode (default [`Histogram], the stock
      {!Stats.Derive} path — bit-identical to the pre-estimator
      pipeline).  [`Feedback] carries an observed-cardinality cache:
      every execution records per-operator actuals under normalized
      subexpression digests ({!Stats.Feedback}), and re-optimization
      overrides derived estimates with fresh cached actuals —
      invalidated when the involved tables' statistics are refreshed to
      different row counts.  [`Sketch] carries a Fast-AGMS registry
      ({!Stats.Sketch}): executions build one-pass sketches over the
      plan's join-key columns (batch/morsel engines only), and join
      selectivities prefer sketch estimates over histograms.  The
      mutable state lives in the variant: reuse one config across runs
      to close the loop. *)
  spans : Obs.Span.recorder option;
  (** span recorder for full-pipeline telemetry (default [None] — zero
      cost).  When set, every stage (rewrite, optimize with nested
      view/enumerate spans, verify, execute) opens a span in the
      recorder and feeds the [stage_seconds{stage="..."}] latency
      histograms; the caller owns the recorder (typically wrapping
      parse/bind spans around the pipeline) and calls
      {!Obs.Span.finish} to close the tree. *)
}

(** view merging; unnesting; view merging again; constant propagation;
    predicate pushdown. *)
val default_rewrites : Rewrite.Rules.t list list

val default_config : config

(** No rewriting at all — the tuple-iteration baseline for nested queries. *)
val naive_config : config

type path = Planned | Interpreted

type report = {
  rewritten : Rewrite.Qgm.block;
  trace : Rewrite.Rules.trace;
  path : path;
  plan : Exec.Plan.t option;  (** [None] when interpreted *)
  est_cost : float;
  enum : Systemr.Join_order.counters;
  (** enumeration effort (subsets, splits, costed, pruned), summed over
      this block and its materialized views *)
  diags : Verify.Diag.t list;  (** lint findings; [[]] when lint is off *)
  op_stats : Exec.Instrument.op list;
  (** per-operator actuals in pre-order (estimated vs. actual rows,
      rescans, counter deltas, wall-clock); [[]] unless
      [config.instrument] and the block was planned *)
  trace_events : Obs.Trace.event list;
  (** optimizer trace (rewrites fired/rejected, per-level enumeration
      counters, prunes, interesting-order retentions, memo statistics,
      feedback records/overrides) in emission order; [[]] unless
      [config.instrument] *)
  stats_at_plan : Stats.Table_stats.db option;
  (** snapshot of the statistics registry as the planner saw it (view
      temporaries included).  Re-annotating the plan after an ANALYZE
      refresh must use this, not the live registry — {!Obs.Est}
      re-synthesizes index-scan bound selectivities from the stats it is
      handed, and against refreshed stats the "estimates" would be
      numbers the planner never produced.  [None] on the interpreted
      path. *)
  span : Obs.Span.t option;
  (** this block's span subtree (rewrite / optimize / verify / execute
      children), closed by the time the report is returned; [None]
      unless [config.spans] *)
}

(** Can this block (including nested ones) be planned — no residual
    subquery predicates or correlation? *)
val plannable : Rewrite.Qgm.block -> bool

(** Plan a single plannable block, materializing derived sources into
    temporary tables; returns (plan, estimated cost, enumeration
    counters, temp tables created).  [on_plan] is called with every
    finished plan — including view sub-plans, while their temporaries are
    still cataloged — which is where the linter hooks in.  [trace] is the
    optimizer-trace sink threaded into the join enumerator.  With
    [exec_views:false] derived sources are planned but not executed: their
    temporaries stay empty, carry estimate-derived statistics, and
    [on_view] sees each view's (alias, plan). *)
val plan_block :
  ?on_plan:(Exec.Plan.t -> unit) ->
  ?trace:(Obs.Trace.event -> unit) ->
  ?exec_views:bool ->
  ?on_view:(string -> Exec.Plan.t -> unit) ->
  Exec.Context.t -> config -> Storage.Catalog.t -> Stats.Table_stats.db ->
  Rewrite.Qgm.block ->
  Exec.Plan.t * float * Systemr.Join_order.counters * string list

(** Rewrite, plan (or fall back to interpretation), execute. *)
val run :
  ?ctx:Exec.Context.t -> ?config:config -> Storage.Catalog.t ->
  Stats.Table_stats.db -> Rewrite.Qgm.block ->
  Exec.Executor.result * report

(** Human-readable rewrite trace + physical plan(s) + estimated cost.
    Derived sources are planned but never executed: view temporaries stay
    empty and carry statistics fabricated from the sub-plan's estimated
    cardinality, so outer-block costs remain realistic.  Use [analyze] to
    execute. *)
val explain :
  ?config:config -> Storage.Catalog.t -> Stats.Table_stats.db ->
  Rewrite.Qgm.block -> string

(** Run a full query (UNION [ALL] above the block layer); one report per
    block arm.  @raise Invalid_argument on arity mismatch. *)
val run_query :
  ?ctx:Exec.Context.t -> ?config:config -> Storage.Catalog.t ->
  Stats.Table_stats.db -> Rewrite.Qgm.query ->
  Exec.Executor.result * report list

(** [run_query] returning each block's instrumentation recorder
    alongside its report — recorders carry the per-operator actuals and
    the worker task timelines behind the {!Obs.Profile} export.  [None]
    per block on the interpreted path, or when neither
    [config.instrument] nor the feedback estimator created one. *)
val run_query_full :
  ?ctx:Exec.Context.t -> ?config:config -> Storage.Catalog.t ->
  Stats.Table_stats.db -> Rewrite.Qgm.query ->
  Exec.Executor.result * (report * Exec.Instrument.t option) list

val explain_query :
  ?config:config -> Storage.Catalog.t -> Stats.Table_stats.db ->
  Rewrite.Qgm.query -> string

(** EXPLAIN ANALYZE: run the block with instrumentation forced on and
    return (result, report, rendered analysis).  The text shows, per
    operator, estimated vs. actual rows, the q-error
    [max(est/act, act/est)], rescans, execution-counter deltas and — unless
    [show_wall:false] (deterministic output for tests) — wall-clock time,
    plus a per-query worst-q-error summary line. *)
val analyze :
  ?ctx:Exec.Context.t -> ?config:config -> ?show_wall:bool ->
  Storage.Catalog.t -> Stats.Table_stats.db -> Rewrite.Qgm.block ->
  Exec.Executor.result * report * string

(** [analyze] over a full query; UNION arms are rendered in sequence. *)
val analyze_query :
  ?ctx:Exec.Context.t -> ?config:config -> ?show_wall:bool ->
  Storage.Catalog.t -> Stats.Table_stats.db -> Rewrite.Qgm.query ->
  Exec.Executor.result * report list * string
