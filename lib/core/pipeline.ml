(* The end-to-end query pipeline:

     QGM block --rewrite rules--> QGM block
               --materialize derived sources (block at a time)-->
               single base-only block
               --join enumeration (System-R DP)--> physical plan
               --execute--> rows

   Multi-block queries whose subquery predicates survive rewriting fall
   back to the tuple-iteration interpreter — the paper's pre-unnesting
   semantics — so every query always runs; the experiments compare the two
   paths.  Materialized views (derived sources) are planned and executed
   bottom-up into temporary tables, in the Starburst style of optimizing a
   block at a time. *)

open Relalg

type config = {
  rewrites : Rewrite.Rules.t list list; (* rule classes, run in order *)
  join_config : Systemr.Join_order.config;
  lint : bool; (* run the static verifier at every stage *)
  engine : [ `Interpreted | `Batch ]; (* plan execution engine *)
  instrument : bool;
      (* per-operator runtime stats + optimizer trace (EXPLAIN ANALYZE);
         off = zero-cost *)
  analysis : bool;
      (* abstract-interpretation pass: analyzer-backed rewrite rules
         (empty-subtree folding, transitive range closure) appended as a
         final rule class, plus provable-bound lints comparing the cost
         model's estimates against the sound cardinality envelope *)
  dop : int;
      (* degree of parallelism.  > 1 selects the morsel-driven engine
         (batch plans only), with per-node dop taken from the two-phase
         segment schedule; results and counters are bit-identical to
         dop 1 *)
  morsel_rows : int; (* parallel split granularity, rows per morsel *)
  chunk_rows : int;
      (* columnar-engine block granularity (selection-vector build and
         emission loops); results are chunk_rows-independent *)
  estimator :
    [ `Histogram
    | `Feedback of Stats.Feedback.t
    | `Sketch of Stats.Sketch.registry ];
      (* cardinality estimation mode.  `Histogram is the stock
         Stats.Derive path.  `Feedback carries an observed-cardinality
         cache: every instrumented execution records per-operator
         actuals under normalized subexpression digests, and
         re-optimization overrides derived estimates with fresh cached
         actuals.  `Sketch carries a Fast-AGMS registry: executions
         build one-pass sketches over the plan's join-key columns
         (batch/morsel engines), and join selectivities prefer sketch
         estimates over histograms.  The mutable state lives in the
         variant so one config reused across runs closes the loop;
         default_config stays stateless. *)
  spans : Obs.Span.recorder option;
      (* span recorder for full-pipeline telemetry.  When set, every
         stage (rewrite, optimize with nested view/enumerate spans,
         verify, execute) opens a span and feeds the per-stage latency
         histograms; None (the default) costs nothing. *)
}

let default_rewrites : Rewrite.Rules.t list list =
  [ [ Rewrite.View_merge.rule ];
    Rewrite.Unnest.default_rules;
    [ Rewrite.View_merge.rule ];
    [ Rewrite.Predicate_move.constants_rule ];
    [ Rewrite.Predicate_move.pushdown_rule ] ]

let default_config =
  { rewrites = default_rewrites;
    join_config = Systemr.Join_order.default_config;
    lint = false;
    engine = `Batch;
    instrument = false;
    analysis = false;
    dop = 1;
    morsel_rows = Exec.Morsel.default_morsel_rows;
    chunk_rows = Exec.Batch.default_chunk_rows;
    estimator = `Histogram;
    spans = None }

(* Wrap [f] in a span when a recorder is attached; no recorder, no work. *)
let span config ?attrs name f =
  match config.spans with
  | None -> f ()
  | Some r -> Obs.Span.with_span r ?attrs name f

(* A top-level pipeline stage: a span plus the per-stage latency
   histogram ([stage_seconds{stage="..."}]).  Only the flat stages go
   through here — nested spans (views, enumerator calls) skip the
   histogram so stage latencies sum to roughly the query total. *)
let stage config ?attrs name f =
  match config.spans with
  | None -> f ()
  | Some r ->
    let t0 = Obs.Clock.now () in
    Fun.protect
      ~finally:(fun () ->
        Obs.Metrics.observe_hist
          (Obs.Metrics.stage_seconds name)
          (Obs.Clock.elapsed_s t0))
      (fun () -> Obs.Span.with_span r ?attrs name f)

(* Fold the estimator mode into the join config the planner actually
   sees: `Feedback plugs the cache into [Join_order.stats_of] (and,
   through the shared context, Cascades); `Sketch flips the assumption
   so [Stats.Derive] prefers sketch join estimates. *)
let effective_join_config (config : config) : Systemr.Join_order.config =
  let jc = config.join_config in
  match config.estimator with
  | `Histogram -> jc
  | `Feedback fb -> { jc with feedback = Some fb }
  | `Sketch _ ->
    { jc with
      asm = { jc.Systemr.Join_order.asm with Stats.Derive.use_sketches = true } }

(* The analyzer rules run after pushdown so contradictions pushed into a
   view fold there first; [fold_empty]'s own fixpoint then propagates the
   emptiness back out through the enclosing blocks. *)
let effective_rewrites (config : config) : Rewrite.Rules.t list list =
  if config.analysis then config.rewrites @ [ Analysis.Simplify.rules ]
  else config.rewrites

(* All engines produce bit-identical rows and Context accounting; the
   interpreter remains the differential-testing oracle.  At dop > 1 the
   two-phase segment schedule decides each node's parallelism; if
   deriving it fails (e.g. missing statistics) the morsel engine runs
   every eligible node at the full dop — either way results are exact. *)
let exec_plan config ~ctx ?obs ?sketch cat db plan =
  match config.engine with
  | `Interpreted ->
    (* the tuple interpreter has no columnar scan to hook sketches into *)
    Exec.Executor.run ~ctx ?obs cat plan
  | `Batch ->
    if config.dop > 1 then
      let schedule =
        try
          Some
            (Parallel.Two_phase.node_dop
               { Parallel.Two_phase.default_config with
                 processors = config.dop }
               cat db plan)
        with _ -> None
      in
      Exec.Morsel.run ~ctx ?obs ?sketch ?schedule ~morsel:config.morsel_rows
        ~chunk_rows:config.chunk_rows ~dop:config.dop cat plan
    else
      Exec.Batch.run ~ctx ?obs ?sketch ~chunk_rows:config.chunk_rows cat plan

(* No rewriting at all: the naive baseline. *)
let naive_config = { default_config with rewrites = [] }

(* ------------------------------------------------------------------ *)
(* Sketch estimator plumbing *)

let is_temp_table t = String.length t >= 5 && String.sub t 0 5 = "__mat"

(* The (table, column) pairs used as join keys anywhere in the plan — the
   columns worth sketching during this execution. *)
let join_key_cols (plan : Exec.Plan.t) : (string * string) list =
  let module P = Exec.Plan in
  let alias_tbl = Hashtbl.create 8 in
  let refs : Expr.col_ref list ref = ref [] in
  let note (c : Expr.col_ref) = refs := c :: !refs in
  let eq_cols pred =
    List.iter
      (function
        | Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b)
          when a.Expr.rel <> b.Expr.rel ->
          note a;
          note b
        | _ -> ())
      (Pred.conjuncts pred)
  in
  List.iter
    (fun p ->
       match p with
       | P.Seq_scan { table; alias; _ } | P.Index_scan { table; alias; _ } ->
         Hashtbl.replace alias_tbl alias table
       | P.Index_nl { table; alias; columns; outer_keys; _ } ->
         Hashtbl.replace alias_tbl alias table;
         List.iter (fun c -> note { Expr.rel = alias; col = c }) columns;
         List.iter
           (function Expr.Col c -> note c | _ -> ())
           outer_keys
       | P.Merge_join { pairs; _ } | P.Hash_join { pairs; _ } ->
         List.iter
           (fun (a, b) ->
              note a;
              note b)
           pairs
       | P.Nested_loop { pred; _ } -> eq_cols pred
       | P.Filter _ | P.Project _ | P.Sort _ | P.Materialize _
       | P.Hash_agg _ | P.Stream_agg _ | P.Hash_distinct _ -> ())
    (P.preorder plan);
  List.filter_map
    (fun (c : Expr.col_ref) ->
       match Hashtbl.find_opt alias_tbl c.Expr.rel with
       | Some table when not (is_temp_table table) -> Some (table, c.Expr.col)
       | _ -> None)
    !refs
  |> List.sort_uniq compare

(* Scan hook for one execution: start a sketch for every wanted join-key
   column that has no fresh sketch yet, feeding at most one scan per
   (table, column) — a self-joined table is scanned once per alias, but
   its column must be summarized exactly once. *)
let sketch_hook_for (reg : Stats.Sketch.registry) db plan :
  Exec.Batch.sketch_hook * (string * string, Stats.Sketch.t) Hashtbl.t =
  let wanted = join_key_cols plan in
  let pending : (string * string, Stats.Sketch.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let rows_of table =
    match Stats.Table_stats.find db table with
    | Some ts -> ts.Stats.Table_stats.rows
    | None -> -1.
  in
  let hook ~table ~column =
    if not (List.mem (table, column) wanted) then None
    else if Hashtbl.mem pending (table, column) then None
    else
      let fresh =
        match Stats.Sketch.registry_find reg ~table ~column with
        | Some e -> Stats.Sketch.entry_fresh e ~rows:(rows_of table) <> None
        | None -> false
      in
      if fresh then None
      else begin
        let sk = Stats.Sketch.create () in
        Hashtbl.replace pending (table, column) sk;
        Some (fun v -> Stats.Sketch.update sk v)
      end
  in
  (hook, pending)

(* After execution: enter the sketches built during this run into the
   registry, stamped with the tables' current row counts. *)
let commit_sketches (reg : Stats.Sketch.registry) db pending : unit =
  Hashtbl.iter
    (fun (table, column) sk ->
       let rows =
         match Stats.Table_stats.find db table with
         | Some ts -> ts.Stats.Table_stats.rows
         | None -> -1.
       in
       Stats.Sketch.registry_set reg ~table ~column
         { Stats.Sketch.sketch = sk; rows_at_build = rows };
       Obs.Metrics.incr Obs.Metrics.sketches_built)
    pending

(* Before planning: surface every still-fresh sketch in the statistics
   registry's column stats, where [Stats.Derive] consults them.  ANALYZE
   rebuilds column stats with [sketch = None], so a statistics refresh
   (or data change, via the row-count stamp) silently retires sketches
   until an execution rebuilds them. *)
let inject_sketches (reg : Stats.Sketch.registry) db : unit =
  Stats.Sketch.registry_iter
    (fun ~table ~column e ->
       match Stats.Table_stats.find db table with
       | None -> ()
       | Some ts -> (
         match Stats.Sketch.entry_fresh e ~rows:ts.Stats.Table_stats.rows with
         | None -> ()
         | Some sk ->
           let changed = ref false in
           let cols =
             List.map
               (fun (n, cs) ->
                  if
                    n = column
                    && (match cs.Stats.Table_stats.sketch with
                        | Some existing -> existing != sk
                        | None -> true)
                  then begin
                    changed := true;
                    (n, { cs with Stats.Table_stats.sketch = Some sk })
                  end
                  else (n, cs))
               ts.Stats.Table_stats.cols
           in
           if !changed then
             Hashtbl.replace db table { ts with Stats.Table_stats.cols }))
    reg

type path = Planned | Interpreted (* fallback for residual correlation *)

type report = {
  rewritten : Rewrite.Qgm.block;
  trace : Rewrite.Rules.trace;
  path : path;
  plan : Exec.Plan.t option;
  est_cost : float;
  enum : Systemr.Join_order.counters;
      (* enumeration effort, summed over this block and its views *)
  diags : Verify.Diag.t list; (* lint findings; [] when lint is off *)
  op_stats : Exec.Instrument.op list;
      (* per-operator actuals (est/act rows, rescans, counter deltas);
         [] unless [config.instrument] and the block was planned *)
  trace_events : Obs.Trace.event list;
      (* optimizer trace in emission order; [] unless [config.instrument] *)
  stats_at_plan : Stats.Table_stats.db option;
      (* shallow copy of the statistics registry as the planner saw it
         (bindings are immutable records, so a copy is a true snapshot).
         Re-annotating the plan later — after an ANALYZE refresh — must
         use this, not the live registry: [Obs.Est] re-synthesizes
         index-scan bound selectivities from whatever stats it is
         handed, and against refreshed stats the reported "estimates"
         would be numbers the planner never produced.  None on the
         interpreted path. *)
  span : Obs.Span.t option;
      (* this block's span subtree (rewrite / optimize / verify /
         execute children), closed by the time the report is returned;
         None unless [config.spans] *)
}

(* Can this block (and everything it contains) be planned, i.e. no subquery
   predicates anywhere and no correlation? *)
let rec plannable (b : Rewrite.Qgm.block) : bool =
  let pred_ok = function
    | Rewrite.Qgm.P _ -> true
    | Rewrite.Qgm.In_sub _ | Rewrite.Qgm.Exists_sub _ | Rewrite.Qgm.Cmp_sub _
      -> false
  in
  let source_ok = function
    | Rewrite.Qgm.Base _ -> true
    | Rewrite.Qgm.Derived { block; _ } -> plannable block
  in
  (not (Rewrite.Qgm.is_correlated b))
  && List.for_all pred_ok b.Rewrite.Qgm.where
  && List.for_all pred_ok b.Rewrite.Qgm.having
  && List.for_all source_ok b.Rewrite.Qgm.from
  && List.for_all (fun s -> source_ok s.Rewrite.Qgm.s_source) b.Rewrite.Qgm.semijoins
  && List.for_all (fun o -> source_ok o.Rewrite.Qgm.o_source) b.Rewrite.Qgm.outerjoins

(* ------------------------------------------------------------------ *)
(* Planning a base-only single block *)

let tmp_counter = ref 0

(* Materialize a derived source into a temporary table registered in the
   catalog and statistics registry; returns the replacement Base source, the
   temp name, and the estimated cost spent.  With [exec_views:false] (plain
   EXPLAIN) the view is planned but never executed: the temporary stays
   empty and its statistics are fabricated from the sub-plan's estimated
   cardinality, so the outer block still costs against realistic row
   counts.  [on_view] sees each view's (alias, plan) for display. *)
let rec materialize_source ~on_plan ~trace ~exec_views ~on_view ctx config cat
    db (s : Rewrite.Qgm.source) :
  Rewrite.Qgm.source * string list * float * Systemr.Join_order.counters =
  match s with
  | Rewrite.Qgm.Base _ -> (s, [], 0., Systemr.Join_order.counters_zero)
  | Rewrite.Qgm.Derived { block; alias } ->
    span config ~attrs:[ ("alias", alias) ] "view" @@ fun () ->
    let plan, cost, enum, temps =
      plan_block ~on_plan ?trace ~exec_views ~on_view ctx config cat db block
    in
    incr tmp_counter;
    let tmp_name = Printf.sprintf "__mat%d_%s" !tmp_counter alias in
    let schema = Exec.Plan.schema cat plan in
    let columns =
      List.map (fun (c : Schema.column) -> (c.Schema.name, c.Schema.ty)) schema
    in
    let table = Storage.Catalog.create_table cat ~name:tmp_name ~columns in
    if exec_views then begin
      let result = exec_plan config ~ctx cat db plan in
      Array.iter (Storage.Table.insert table) result.Exec.Executor.rows;
      (* writing the temporary costs its pages *)
      Exec.Context.charge_spill ctx (Storage.Table.page_count table);
      Hashtbl.replace db tmp_name (Stats.Table_stats.analyze table)
    end
    else begin
      let est =
        Obs.Est.annotate ~asm:config.join_config.Systemr.Join_order.asm cat db
          plan
      in
      let rows = Option.value (Obs.Est.card est plan) ~default:0. in
      let pages =
        Storage.Page.pages_for ~rows:(int_of_float (Float.ceil rows)) schema
      in
      Hashtbl.replace db tmp_name
        { Stats.Table_stats.table = tmp_name; rows; pages; cols = [] };
      on_view alias plan
    end;
    ( Rewrite.Qgm.Base
        { table = tmp_name; alias;
          schema = Schema.requalify table.Storage.Table.schema ~rel:alias },
      tmp_name :: temps,
      cost,
      enum )

(* Attach a semi/anti/outer join of [source] (Base) to [plan], choosing a
   hash join when an equi predicate is available. *)
and attach_join cat kind (plan : Exec.Plan.t) (plan_aliases : string list)
    (src : Rewrite.Qgm.source) (pred : Expr.t) : Exec.Plan.t =
  let table, alias =
    match src with
    | Rewrite.Qgm.Base { table; alias; _ } -> (table, alias)
    | Rewrite.Qgm.Derived { alias; _ } ->
      invalid_arg ("attach_join: unmaterialized " ^ alias)
  in
  ignore cat;
  let scan = Exec.Plan.Seq_scan { table; alias; filter = None } in
  let pairs, residual =
    Pred.equi_pairs ~left:plan_aliases ~right:[ alias ] (Pred.conjuncts pred)
  in
  if pairs <> [] then
    Exec.Plan.Hash_join
      { kind; pairs; residual = Pred.of_conjuncts residual; left = plan;
        right = scan }
  else
    Exec.Plan.Nested_loop
      { kind; pred; outer = plan; inner = Exec.Plan.Materialize scan }

(* Plan a single plannable block.  Returns (plan, estimated cost, plans
   costed, temp tables created).  [on_plan] sees every finished plan —
   including the sub-plans of materialized views, while their temporary
   tables are still in the catalog — which is where the linter hooks in. *)
and plan_block ?(on_plan = fun (_ : Exec.Plan.t) -> ()) ?trace
    ?(exec_views = true) ?(on_view = fun _ (_ : Exec.Plan.t) -> ()) ctx config
    cat db (b : Rewrite.Qgm.block) :
  Exec.Plan.t * float * Systemr.Join_order.counters * string list =
  (* 1. materialize derived sources *)
  let mat sources =
    List.fold_left
      (fun (acc, temps, cost, enum) s ->
         let s', t, c, e =
           materialize_source ~on_plan ~trace ~exec_views ~on_view ctx config
             cat db s
         in
         (acc @ [ s' ], temps @ t, cost +. c,
          Systemr.Join_order.counters_add enum e))
      ([], [], 0., Systemr.Join_order.counters_zero) sources
  in
  let from, temps1, cost1, enum1 = mat b.Rewrite.Qgm.from in
  let sj_sources, temps2, cost2, enum2 =
    mat (List.map (fun s -> s.Rewrite.Qgm.s_source) b.Rewrite.Qgm.semijoins)
  in
  let oj_sources, temps3, cost3, enum3 =
    mat (List.map (fun o -> o.Rewrite.Qgm.o_source) b.Rewrite.Qgm.outerjoins)
  in
  (* 2. optimize the inner-join core with the System-R enumerator *)
  let relations =
    List.map
      (function
        | Rewrite.Qgm.Base { table; alias; schema } ->
          { Systemr.Spj.alias; table; schema }
        | Rewrite.Qgm.Derived { alias; _ } ->
          invalid_arg ("plan_block: unmaterialized " ^ alias))
      from
  in
  let predicates = Rewrite.Qgm.plain_preds b.Rewrite.Qgm.where in
  let is_plain_group = b.Rewrite.Qgm.group_by = [] && b.Rewrite.Qgm.aggs = [] in
  let spj_order =
    (* exploit interesting orders end-to-end when no aggregation intervenes *)
    if
      is_plain_group && b.Rewrite.Qgm.semijoins = []
      && b.Rewrite.Qgm.outerjoins = []
      && List.for_all
           (fun (e, _) -> match e with Expr.Col _ -> true | _ -> false)
           b.Rewrite.Qgm.order_by
    then
      List.filter_map
        (fun (e, d) ->
           match e with Expr.Col c -> Some (c, d) | _ -> None)
        b.Rewrite.Qgm.order_by
    else []
  in
  let q =
    Systemr.Spj.make ~relations ~predicates ~order_by:spj_order ()
  in
  let res =
    (* one span per enumerator invocation (views recurse here too),
       annotated with the DP effort counters once they are known *)
    match config.spans with
    | None ->
      Systemr.Join_order.optimize ?trace ~config:config.join_config cat db q
    | Some r ->
      let s =
        Obs.Span.enter r
          ~attrs:
            [ ("relations", string_of_int (List.length relations)) ]
          "enumerate"
      in
      let res =
        try
          Systemr.Join_order.optimize ?trace ~config:config.join_config cat
            db q
        with e ->
          Obs.Span.stop r s;
          raise e
      in
      let c = res.Systemr.Join_order.counters in
      Obs.Span.set_attr s "subsets"
        (string_of_int c.Systemr.Join_order.subsets);
      Obs.Span.set_attr s "costed" (string_of_int c.Systemr.Join_order.costed);
      Obs.Span.set_attr s "pruned" (string_of_int c.Systemr.Join_order.pruned);
      Obs.Span.stop r s;
      res
  in
  let plan = ref res.Systemr.Join_order.best.Systemr.Candidate.plan in
  let cost = ref res.Systemr.Join_order.best.Systemr.Candidate.cost in
  let aliases = ref (Systemr.Spj.relation_aliases q) in
  (* 3. semijoins, then outerjoins *)
  List.iter2
    (fun (sj : Rewrite.Qgm.semijoin) src ->
       let kind = if sj.Rewrite.Qgm.s_anti then Algebra.Anti else Algebra.Semi in
       plan := attach_join cat kind !plan !aliases src sj.Rewrite.Qgm.s_pred)
    b.Rewrite.Qgm.semijoins sj_sources;
  List.iter2
    (fun (oj : Rewrite.Qgm.outerjoin) src ->
       plan := attach_join cat Algebra.Left_outer !plan !aliases src oj.Rewrite.Qgm.o_pred;
       aliases := !aliases @ [ Rewrite.Qgm.alias_of_source src ])
    b.Rewrite.Qgm.outerjoins oj_sources;
  (* 4. grouping, having, order, projection, distinct *)
  if not is_plain_group then
    plan :=
      Exec.Plan.Hash_agg
        { keys = b.Rewrite.Qgm.group_by; aggs = b.Rewrite.Qgm.aggs;
          input = !plan };
  (match Rewrite.Qgm.plain_preds b.Rewrite.Qgm.having with
   | [] -> ()
   | ps -> plan := Exec.Plan.Filter (Pred.of_conjuncts ps, !plan));
  (match b.Rewrite.Qgm.order_by with
   | [] -> ()
   | keys ->
     if spj_order = [] then
       plan :=
         Exec.Plan.Sort
           (List.map
              (fun (e, d) ->
                 { Exec.Plan.key = e; descending = (d = Algebra.Desc) })
              keys,
            !plan));
  plan := Exec.Plan.Project (b.Rewrite.Qgm.select, !plan);
  if b.Rewrite.Qgm.distinct then plan := Exec.Plan.Hash_distinct !plan;
  on_plan !plan;
  ( !plan,
    !cost +. cost1 +. cost2 +. cost3,
    List.fold_left Systemr.Join_order.counters_add
      res.Systemr.Join_order.counters [ enum1; enum2; enum3 ],
    temps1 @ temps2 @ temps3 )

(* ------------------------------------------------------------------ *)
(* Entry point *)

(* Hook plumbing shared by [run], [explain] and [analyze]: a diagnostics
   accumulator plus (when instrumenting) a trace-event accumulator, the
   rewrite-oracle / rewrite-trace callback for [Rewrite.Rules.run], and the
   plan callback for [plan_block].  [events] accumulates reversed. *)
type hooks = {
  diags : Verify.Diag.t list ref;
  events : Obs.Trace.event list ref;
  check :
    (rule:string -> before:Rewrite.Qgm.block -> after:Rewrite.Qgm.block ->
     unit)
      option;
  on_reject : (rule:string -> unit) option;
  trace : (Obs.Trace.event -> unit) option;
  on_plan : Exec.Plan.t -> unit;
}

let make_hooks (config : config) cat : hooks =
  let diags = ref [] in
  let events = ref [] in
  let lint_check =
    if config.lint then
      Some
        (fun ~rule ~before ~after ->
           diags := !diags @ Verify.check_rewrite ~rule ~before ~after)
    else None
  in
  let trace_check =
    if config.instrument then
      Some
        (fun ~rule ~before ~after ->
           let dg b = Obs.Trace.digest (Fmt.str "%a" Rewrite.Qgm.pp_block b) in
           events :=
             Obs.Trace.Rewrite_fired
               { rule; before = dg before; after = dg after }
             :: !events)
    else None
  in
  let check =
    match (lint_check, trace_check) with
    | None, None -> None
    | lc, tc ->
      Some
        (fun ~rule ~before ~after ->
           (match lc with Some f -> f ~rule ~before ~after | None -> ());
           match tc with Some f -> f ~rule ~before ~after | None -> ())
  in
  let on_reject =
    if config.instrument then
      Some
        (fun ~rule -> events := Obs.Trace.Rewrite_rejected { rule } :: !events)
    else None
  in
  let trace =
    if config.instrument then Some (fun e -> events := e :: !events) else None
  in
  let on_plan p = if config.lint then diags := !diags @ Verify.physical cat p in
  { diags; events; check; on_reject; trace; on_plan }

(* One block end-to-end, also returning the instrumentation recorder (when
   [config.instrument]) so [analyze] can render the annotated plan. *)
let run_block ~ctx ~config (cat : Storage.Catalog.t)
    (db : Stats.Table_stats.db) (block : Rewrite.Qgm.block) :
  Exec.Executor.result * report * Exec.Instrument.t option =
  (* resolve the estimator into the join config once; everything below
     (enumeration, lints, annotation) sees the effective assumptions *)
  let config = { config with join_config = effective_join_config config } in
  let h = make_hooks config cat in
  let blk_span =
    Option.map (fun r -> Obs.Span.enter r "block") config.spans
  in
  let stop_blk () =
    match (config.spans, blk_span) with
    | Some r, Some s -> Obs.Span.stop r s
    | _ -> ()
  in
  let rewritten, trace =
    stage config "rewrite" @@ fun () ->
    Rewrite.Rules.run ?check:h.check ?on_reject:h.on_reject
      (effective_rewrites config) block
  in
  if plannable rewritten then begin
    (match config.estimator with
     | `Sketch reg -> inject_sketches reg db
     | `Histogram | `Feedback _ -> ());
    let plan, est_cost, enum, temps =
      stage config "optimize" @@ fun () ->
      plan_block ~on_plan:h.on_plan ?trace:h.trace ctx config cat db rewritten
    in
    (* snapshot the statistics the planner consulted — view temporaries
       included — before execution can change anything *)
    let stats_at_plan = Hashtbl.copy db in
    (* provable-bound lint: only here, while view temporaries are still
       registered with exact (ANALYZE-derived) statistics — the EXPLAIN
       path fabricates temp statistics from estimates, which would make
       the envelope itself unsound *)
    if config.analysis then
      stage config "verify" (fun () ->
        h.diags :=
          !(h.diags)
          @ Analysis.Lint.physical
              ~asm:config.join_config.Systemr.Join_order.asm cat db plan);
    let feedback =
      match config.estimator with `Feedback fb -> Some fb | _ -> None
    in
    let recorder =
      (* feedback mode needs per-operator actuals even without EXPLAIN
         ANALYZE — the recorder is how observed cardinalities reach the
         cache *)
      if config.instrument || feedback <> None then begin
        let r = Exec.Instrument.create plan in
        (* estimates must be derived while view temporaries are still in
           the catalog and statistics registry, and against the plan-time
           stats snapshot; with feedback, annotation applies the same
           overrides the planner used *)
        if config.instrument then
          Obs.Est.attach
            (Obs.Est.annotate ~asm:config.join_config.Systemr.Join_order.asm
               ?feedback cat stats_at_plan plan)
            r;
        Some r
      end
      else None
    in
    let sketching =
      match config.estimator with
      | `Sketch reg when config.engine = `Batch ->
        Some (reg, sketch_hook_for reg db plan)
      | _ -> None
    in
    let sketch = Option.map (fun (_, (hook, _)) -> hook) sketching in
    let result =
      stage config
        ~attrs:
          [ ( "engine",
              match config.engine with
              | `Interpreted -> "interpreted"
              | `Batch -> if config.dop > 1 then "morsel" else "batch" );
            ("dop", string_of_int config.dop) ]
        "execute"
      @@ fun () -> exec_plan config ~ctx ?obs:recorder ?sketch cat db plan
    in
    (match sketching with
     | Some (reg, (_, pending)) ->
       commit_sketches reg db pending;
       inject_sketches reg db
     | None -> ());
    (* feed observed per-operator cardinalities back into the cache while
       temps are still present (their subtrees are skipped by keying, but
       the base-table fingerprints must reflect the planned state) *)
    (match (feedback, recorder) with
     | Some fb, Some r ->
       let keys = Obs.Est.feedback_keys plan in
       List.iter
         (fun (op : Exec.Instrument.op) ->
            if op.Exec.Instrument.executed then
              match List.assq_opt op.Exec.Instrument.node keys with
              | None -> ()
              | Some (k, tables) ->
                let act = float_of_int op.Exec.Instrument.act_rows in
                Stats.Feedback.record fb ~db ~tables k act;
                Obs.Metrics.incr Obs.Metrics.feedback_recorded;
                (match h.trace with
                 | Some sink ->
                   sink (Obs.Trace.Feedback_recorded { digest = k; act })
                 | None -> ()))
         (Exec.Instrument.ops r)
     | _ -> ());
    List.iter
      (fun t ->
         Storage.Catalog.remove_table cat t;
         Hashtbl.remove db t)
      temps;
    Obs.Metrics.incr Obs.Metrics.blocks_planned;
    (match recorder with
     | Some r when config.instrument -> (
       match Obs.Analyze.max_q_error r with
       | Some (q, _) when Float.is_finite q ->
         Obs.Metrics.observe_max Obs.Metrics.qerror_max q;
         Obs.Metrics.observe_hist Obs.Metrics.qerror_hist q
       | _ -> ())
     | _ -> ());
    stop_blk ();
    ( result,
      { rewritten; trace; path = Planned; plan = Some plan; est_cost;
        enum; diags = !(h.diags);
        op_stats =
          (match recorder with
           | Some r when config.instrument -> Exec.Instrument.ops r
           | _ -> []);
        trace_events = List.rev !(h.events);
        stats_at_plan = Some stats_at_plan;
        span = blk_span },
      recorder )
  end
  else begin
    (* interpreted fallback: no physical plan to lint, but the block's
       scoping can still be checked statically *)
    if config.lint then h.diags := !(h.diags) @ Verify.block rewritten;
    let result =
      stage config ~attrs:[ ("engine", "interpreter") ] "execute"
      @@ fun () -> Rewrite.Qgm_eval.run ~ctx cat rewritten
    in
    stop_blk ();
    ( result,
      { rewritten; trace; path = Interpreted; plan = None; est_cost = 0.;
        enum = Systemr.Join_order.counters_zero; diags = !(h.diags);
        op_stats = []; trace_events = List.rev !(h.events);
        stats_at_plan = None;
        span = blk_span },
      None )
  end

(* End-to-end latency histogram for every entry point; one monotonic
   read per query when nothing else is instrumented. *)
let timed_query f =
  let t0 = Obs.Clock.now () in
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.observe_hist Obs.Metrics.query_seconds
        (Obs.Clock.elapsed_s t0))
    f

let run ?(ctx = Exec.Context.create ()) ?(config = default_config)
    (cat : Storage.Catalog.t) (db : Stats.Table_stats.db)
    (block : Rewrite.Qgm.block) : Exec.Executor.result * report =
  Obs.Metrics.incr Obs.Metrics.queries_run;
  timed_query @@ fun () ->
  let result, report, _ = run_block ~ctx ~config cat db block in
  (result, report)

let explain ?(config = default_config) cat db block : string =
  let ctx = Exec.Context.create () in
  (* EXPLAIN re-optimizes under the same effective estimator as [run]:
     with a warm feedback cache or fresh sketches it shows the plan a
     re-execution would use *)
  let config = { config with join_config = effective_join_config config } in
  (match config.estimator with
   | `Sketch reg -> inject_sketches reg db
   | `Histogram | `Feedback _ -> ());
  let h = make_hooks config cat in
  let rewritten, trace =
    Rewrite.Rules.run ?check:h.check ?on_reject:h.on_reject
      (effective_rewrites config) block
  in
  let body =
    if plannable rewritten then begin
      (* plan views without executing them: their temporaries stay empty
         and carry estimate-derived statistics *)
      let views = ref [] in
      let plan, est_cost, _, temps =
        plan_block ~on_plan:h.on_plan ?trace:h.trace ~exec_views:false
          ~on_view:(fun alias p -> views := (alias, p) :: !views)
          ctx config cat db rewritten
      in
      List.iter
        (fun t ->
           Storage.Catalog.remove_table cat t;
           Hashtbl.remove db t)
        temps;
      let views_s =
        List.rev_map
          (fun (alias, p) ->
             Fmt.str "@[<v>view %s:@,%a@,@]" alias Exec.Plan.pp p)
          !views
        |> String.concat ""
      in
      Fmt.str "@[<v>%s%a@,estimated cost: %.1f@]" views_s Exec.Plan.pp plan
        est_cost
    end
    else begin
      if config.lint then h.diags := !(h.diags) @ Verify.block rewritten;
      Fmt.str
        "@[<v>(correlated query: tuple-iteration interpreter)@,%a@]"
        Rewrite.Qgm.pp_block rewritten
    end
  in
  let trace_s =
    match trace with
    | [] -> "(no rewrites applied)"
    | t ->
      String.concat ", "
        (List.map (fun (n, k) -> Printf.sprintf "%s x%d" n k) t)
  in
  let lint_s =
    if config.lint then
      Fmt.str "@,lint: %a" Verify.Diag.pp_list !(h.diags)
    else ""
  in
  Fmt.str "@[<v>rewrites: %s@,%s%s@]" trace_s body lint_s

(* ------------------------------------------------------------------ *)
(* Full queries: UNION [ALL] above the block layer.  Each arm runs through
   the normal block pipeline; UNION deduplicates the combined rows. *)

let rec run_query_blocks ~ctx ~config cat db (q : Rewrite.Qgm.query) :
  Exec.Executor.result * (report * Exec.Instrument.t option) list =
  match q with
  | Rewrite.Qgm.Q_block b ->
    let result, report, recorder = run_block ~ctx ~config cat db b in
    (result, [ (report, recorder) ])
  | Rewrite.Qgm.Q_union { all; left; right } ->
    let l, lr = run_query_blocks ~ctx ~config cat db left in
    let r, rr = run_query_blocks ~ctx ~config cat db right in
    if
      Relalg.Schema.arity l.Exec.Executor.schema
      <> Relalg.Schema.arity r.Exec.Executor.schema
    then invalid_arg "UNION: arity mismatch";
    let rows = Array.append l.Exec.Executor.rows r.Exec.Executor.rows in
    Exec.Context.charge_cpu ctx (Array.length rows);
    let rows =
      if all then rows
      else begin
        let seen = Hashtbl.create 64 in
        let out = Storage.Vec.create () in
        Array.iter
          (fun t ->
             let k = Array.to_list t in
             if not (Hashtbl.mem seen k) then begin
               Hashtbl.replace seen k ();
               Storage.Vec.push out t
             end)
          rows;
        Storage.Vec.to_array out
      end
    in
    ({ Exec.Executor.schema = l.Exec.Executor.schema; rows }, lr @ rr)

let run_query ?(ctx = Exec.Context.create ()) ?(config = default_config) cat
    db (q : Rewrite.Qgm.query) : Exec.Executor.result * report list =
  Obs.Metrics.incr Obs.Metrics.queries_run;
  timed_query @@ fun () ->
  let result, pairs = run_query_blocks ~ctx ~config cat db q in
  (result, List.map fst pairs)

let run_query_full ?(ctx = Exec.Context.create ())
    ?(config = default_config) cat db (q : Rewrite.Qgm.query) :
  Exec.Executor.result * (report * Exec.Instrument.t option) list =
  Obs.Metrics.incr Obs.Metrics.queries_run;
  timed_query @@ fun () -> run_query_blocks ~ctx ~config cat db q

(* ------------------------------------------------------------------ *)
(* EXPLAIN ANALYZE: execute with instrumentation on, render the plan
   annotated with per-operator estimated vs. actual rows, q-error,
   rescans, counter deltas and (optionally) wall-clock. *)

let render_analysis ?show_wall (recorder : Exec.Instrument.t option) : string =
  match recorder with
  | Some r -> Obs.Analyze.render ?show_wall r
  | None ->
    "(correlated query: tuple-iteration interpreter — no per-operator \
     statistics)\n"

let analyze ?(ctx = Exec.Context.create ()) ?(config = default_config)
    ?show_wall cat db (block : Rewrite.Qgm.block) :
  Exec.Executor.result * report * string =
  let config = { config with instrument = true } in
  Obs.Metrics.incr Obs.Metrics.queries_run;
  timed_query @@ fun () ->
  let result, report, recorder = run_block ~ctx ~config cat db block in
  (result, report, render_analysis ?show_wall recorder)

let analyze_query ?(ctx = Exec.Context.create ())
    ?(config = default_config) ?show_wall cat db (q : Rewrite.Qgm.query) :
  Exec.Executor.result * report list * string =
  let config = { config with instrument = true } in
  Obs.Metrics.incr Obs.Metrics.queries_run;
  timed_query @@ fun () ->
  let result, pairs = run_query_blocks ~ctx ~config cat db q in
  let many = List.length pairs > 1 in
  let text =
    String.concat ""
      (List.mapi
         (fun i (_, recorder) ->
            (if many then Printf.sprintf "-- union arm %d\n" (i + 1) else "")
            ^ render_analysis ?show_wall recorder)
         pairs)
  in
  (result, List.map fst pairs, text)

let rec explain_query ?(config = default_config) cat db
    (q : Rewrite.Qgm.query) : string =
  match q with
  | Rewrite.Qgm.Q_block b -> explain ~config cat db b
  | Rewrite.Qgm.Q_union { all; left; right } ->
    Fmt.str "@[<v>%s@,UNION%s@,%s@]"
      (explain_query ~config cat db left)
      (if all then " ALL" else "")
      (explain_query ~config cat db right)
