(* Static checking of physical plans (see the .mli).  The walk mirrors
   [Exec.Plan.schema] but never raises: unknown tables yield an empty
   schema plus a diagnostic, and projection items that fail to type fall
   back to [Tint] so downstream checks still run. *)

open Relalg
module Plan = Exec.Plan
module Props = Cost.Physical_props

let table_schema cat ~table ~alias : Schema.t option =
  match Storage.Catalog.find_opt cat table with
  | None -> None
  | Some entry ->
    Some
      (Schema.requalify entry.Storage.Catalog.table.Storage.Table.schema
         ~rel:alias)

let unknown_table table =
  Diag.error ~code:"unknown-table"
    (Fmt.str "table %S is not in the catalog" table)

(* ------------------------------------------------------------------ *)
(* Order propagation (Section 3): what sort order does a plan deliver? *)

(* Remap an order through projection-style items: an order column survives
   if some item is exactly that column, under its output alias.  Stop at
   the first column that does not survive — order is a prefix property. *)
let remap_order (items : (Expr.t * string) list) (order : Props.order) :
  Props.order =
  let rec go = function
    | [] -> []
    | (c, d) :: rest -> (
      let surviving =
        List.find_opt
          (fun (e, _) ->
             match e with Expr.Col c' -> Props.equal_col c' c | _ -> false)
          items
      in
      match surviving with
      | Some (_, alias) -> ({ Expr.rel = ""; col = alias }, d) :: go rest
      | None -> [])
  in
  go order

let rec produced_order (p : Plan.t) : Props.order =
  match p with
  | Plan.Seq_scan _ -> Props.no_order
  | Plan.Index_scan { alias; column; _ } ->
    [ ({ Expr.rel = alias; col = column }, Algebra.Asc) ]
  | Plan.Filter (_, i) | Plan.Materialize i | Plan.Hash_distinct i ->
    produced_order i
  | Plan.Project (items, i) -> remap_order items (produced_order i)
  | Plan.Sort (keys, _) ->
    (* the delivered order is the longest plain-column prefix of the keys *)
    let rec cols = function
      | { Plan.key = Expr.Col c; descending } :: rest ->
        (c, if descending then Algebra.Desc else Algebra.Asc) :: cols rest
      | _ -> []
    in
    cols keys
  | Plan.Nested_loop { outer; _ } -> produced_order outer
  | Plan.Index_nl { outer; _ } -> produced_order outer
  | Plan.Merge_join { left; _ } | Plan.Hash_join { left; _ } ->
    (* both preserve the left (outer/probe) stream's order *)
    produced_order left
  | Plan.Hash_agg _ -> Props.no_order
  | Plan.Stream_agg { keys; input; _ } ->
    remap_order keys (produced_order input)

(* ------------------------------------------------------------------ *)
(* The checker *)

let dup_aliases (aliases : string list) ~what : Diag.t list =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun a ->
       if Hashtbl.mem seen a then
         Some
           (Diag.error ~code:"duplicate-alias"
              (Fmt.str "duplicate %s %S" what a))
       else begin
         Hashtbl.replace seen a ();
         None
       end)
    aliases

let out_column alias ty =
  Schema.column ~rel:"" ~name:alias ~ty:(Option.value ty ~default:Value.Tint)

let check_items schema (items : (Expr.t * string) list) ~what :
  Schema.t * Diag.t list =
  let diags, out =
    List.fold_left
      (fun (acc, out) (e, a) ->
         let ty, d = Typecheck.infer schema e in
         (acc @ d, out @ [ out_column a ty ]))
      ([], []) items
  in
  (out, diags @ dup_aliases (List.map snd items) ~what)

let check_filter schema = function
  | None -> []
  | Some p -> Typecheck.check_predicate schema p

(* One side of a hash/merge key pair: resolve the column on its own side's
   schema and return its type. *)
let pair_col schema (c : Expr.col_ref) : Value.ty option * Diag.t list =
  Typecheck.infer schema (Expr.Col c)

let check_pairs ls rs (pairs : (Expr.col_ref * Expr.col_ref) list) :
  Diag.t list =
  List.concat_map
    (fun (l, r) ->
       let tl, dl = pair_col ls l in
       let tr, dr = pair_col rs r in
       dl @ dr
       @
       match (tl, tr) with
       | Some tl, Some tr when not (Typecheck.comparable tl tr) ->
         [ Diag.error ~code:"key-type-mismatch"
             (Fmt.str "join keys %s.%s (%s) and %s.%s (%s) are not comparable"
                l.Expr.rel l.Expr.col (Value.ty_name tl) r.Expr.rel r.Expr.col
                (Value.ty_name tr)) ]
       | _ -> [])
    pairs

let sorted_on side input ~(want : Props.order) : Diag.t list =
  let have = produced_order input in
  if Props.satisfies ~have ~want then []
  else
    [ Diag.error ~code:"unsorted-input"
        (Fmt.str
           "%s input delivers order %s but %s is required — missing Sort \
            enforcer"
           side (Props.to_string have) (Props.to_string want)) ]

let agg_outputs schema (keys : (Expr.t * string) list)
    (aggs : (Expr.agg * string) list) : Schema.t * Diag.t list =
  let key_diags, key_cols =
    List.fold_left
      (fun (acc, out) (e, a) ->
         let ty, d = Typecheck.infer schema e in
         (acc @ d, out @ [ out_column a ty ]))
      ([], []) keys
  in
  let agg_diags, agg_cols =
    List.fold_left
      (fun (acc, out) (g, a) ->
         let ty, d = Typecheck.infer_agg schema g in
         (acc @ d, out @ [ out_column a ty ]))
      ([], []) aggs
  in
  ( key_cols @ agg_cols,
    key_diags @ agg_diags
    @ dup_aliases
        (List.map snd keys @ List.map snd aggs)
        ~what:"aggregate output alias" )

let bound_diag ty_col = function
  | Plan.Unbounded -> []
  | Plan.Incl v | Plan.Excl v -> (
    match (ty_col, Value.type_of v) with
    | Some tc, Some tv when not (Typecheck.comparable tc tv) ->
      [ Diag.error ~code:"key-type-mismatch"
          (Fmt.str "index bound of type %s on a %s column" (Value.ty_name tv)
             (Value.ty_name tc)) ]
    | _ -> [])

let rec walk cat (p : Plan.t) : Schema.t * Diag.t list =
  match p with
  | Plan.Seq_scan { table; alias; filter } -> (
    match table_schema cat ~table ~alias with
    | None -> ([], Diag.within ("Seq_scan " ^ alias) [ unknown_table table ])
    | Some s ->
      (s, Diag.within ("Seq_scan " ^ alias) (check_filter s filter)))
  | Plan.Index_scan { table; alias; column; lo; hi; filter } -> (
    let label = "Index_scan " ^ alias in
    match table_schema cat ~table ~alias with
    | None -> ([], Diag.within label [ unknown_table table ])
    | Some s ->
      let idx_diags =
        match Storage.Catalog.index_on cat ~table ~column with
        | Some _ -> []
        | None ->
          [ Diag.error ~code:"unknown-index"
              (Fmt.str "no index on %s.%s" table column) ]
      in
      let col_ty =
        Option.map
          (fun (_, (c : Schema.column)) -> c.Schema.ty)
          (Schema.find_opt s ~rel:alias ~name:column)
      in
      let own =
        idx_diags @ bound_diag col_ty lo @ bound_diag col_ty hi
        @ check_filter s filter
      in
      (s, Diag.within label own))
  | Plan.Filter (p', i) ->
    let s, d = walk cat i in
    (s, d @ Diag.within "Filter" (Typecheck.check_predicate s p'))
  | Plan.Project (items, i) ->
    let s, d = walk cat i in
    let out, own = check_items s items ~what:"projection alias" in
    (out, d @ Diag.within "Project" own)
  | Plan.Sort (keys, i) ->
    let s, d = walk cat i in
    let own =
      List.concat_map
        (fun { Plan.key; _ } -> snd (Typecheck.infer s key))
        keys
    in
    (s, d @ Diag.within "Sort" own)
  | Plan.Materialize i -> walk cat i
  | Plan.Hash_distinct i -> walk cat i
  | Plan.Nested_loop { kind; pred; outer; inner } ->
    let os, od = walk cat outer in
    let is_, id_ = walk cat inner in
    let env = Schema.concat os is_ in
    let own = Typecheck.check_predicate env pred in
    let out =
      match kind with
      | Algebra.Semi | Algebra.Anti -> os
      | Algebra.Inner | Algebra.Left_outer -> env
    in
    (out, od @ id_ @ Diag.within "Nested_loop" own)
  | Plan.Index_nl { kind; outer; table; alias; index; columns; outer_keys;
                    residual } -> (
    let label = "Index_nl " ^ alias in
    let os, od = walk cat outer in
    match table_schema cat ~table ~alias with
    | None -> (os, od @ Diag.within label [ unknown_table table ])
    | Some is_ ->
      let idx_diags =
        match Storage.Catalog.index_named cat ~table ~name:index with
        | None ->
          [ Diag.error ~code:"unknown-index"
              (Fmt.str "no index named %S on table %s" index table) ]
        | Some idx ->
          let key = idx.Storage.Btree.columns in
          let rec is_prefix xs ys =
            match (xs, ys) with
            | [], _ -> true
            | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
            | _ :: _, [] -> false
          in
          if columns = [] then
            [ Diag.error ~code:"index-prefix-mismatch"
                (Fmt.str "empty probe column list for index %S" index) ]
          else if not (is_prefix columns key) then
            [ Diag.error ~code:"index-prefix-mismatch"
                (Fmt.str "probed columns (%s) are not a prefix of index %S key (%s)"
                   (String.concat ", " columns) index
                   (String.concat ", " key)) ]
          else []
      in
      let arity_diags =
        if List.length outer_keys <> List.length columns then
          [ Diag.error ~code:"probe-arity"
              (Fmt.str "%d probe expressions for %d probed columns"
                 (List.length outer_keys) (List.length columns)) ]
        else []
      in
      (* probe expressions are evaluated against the *outer* tuple *)
      let key_diags =
        List.concat_map (fun e -> snd (Typecheck.infer os e)) outer_keys
      in
      let compat_diags =
        if List.length outer_keys = List.length columns then
          List.concat_map
            (fun (col, e) ->
               let tc =
                 Option.map
                   (fun (_, (c : Schema.column)) -> c.Schema.ty)
                   (Schema.find_opt is_ ~rel:alias ~name:col)
               in
               let te, _ = Typecheck.infer os e in
               match (tc, te) with
               | Some tc, Some te when not (Typecheck.comparable tc te) ->
                 [ Diag.error ~code:"key-type-mismatch"
                     (Fmt.str "probe of %s column %s.%s with a %s expression"
                        (Value.ty_name tc) alias col (Value.ty_name te)) ]
               | _ -> [])
            (List.combine columns outer_keys)
        else []
      in
      let env = Schema.concat os is_ in
      let res_diags = Typecheck.check_predicate env residual in
      let out =
        match kind with
        | Algebra.Semi | Algebra.Anti -> os
        | Algebra.Inner | Algebra.Left_outer -> env
      in
      ( out,
        od
        @ Diag.within label
            (idx_diags @ arity_diags @ key_diags @ compat_diags @ res_diags) ))
  | Plan.Merge_join { kind; pairs; residual; left; right } ->
    let ls, ld = walk cat left in
    let rs, rd = walk cat right in
    let key_diags = check_pairs ls rs pairs in
    let order_diags =
      if pairs = [] then
        [ Diag.warning ~code:"merge-join-no-keys"
            "merge join with no key pairs degenerates to a cross product" ]
      else
        sorted_on "left" left
          ~want:(List.map (fun (l, _) -> (l, Algebra.Asc)) pairs)
        @ sorted_on "right" right
            ~want:(List.map (fun (_, r) -> (r, Algebra.Asc)) pairs)
    in
    let env = Schema.concat ls rs in
    let res_diags = Typecheck.check_predicate env residual in
    let out =
      match kind with
      | Algebra.Semi | Algebra.Anti -> ls
      | Algebra.Inner | Algebra.Left_outer -> env
    in
    (out, ld @ rd @ Diag.within "Merge_join" (key_diags @ order_diags @ res_diags))
  | Plan.Hash_join { kind; pairs; residual; left; right } ->
    let ls, ld = walk cat left in
    let rs, rd = walk cat right in
    let key_diags = check_pairs ls rs pairs in
    let env = Schema.concat ls rs in
    let res_diags = Typecheck.check_predicate env residual in
    let out =
      match kind with
      | Algebra.Semi | Algebra.Anti -> ls
      | Algebra.Inner | Algebra.Left_outer -> env
    in
    (out, ld @ rd @ Diag.within "Hash_join" (key_diags @ res_diags))
  | Plan.Hash_agg { keys; aggs; input } ->
    let s, d = walk cat input in
    let out, own = agg_outputs s keys aggs in
    (out, d @ Diag.within "Hash_agg" own)
  | Plan.Stream_agg { keys; aggs; input } ->
    let s, d = walk cat input in
    let out, own = agg_outputs s keys aggs in
    let key_cols =
      List.filter_map
        (fun (e, _) -> match e with Expr.Col c -> Some c | _ -> None)
        keys
    in
    let order_diags =
      (* Stream_agg needs equal keys adjacent: the input order's leading
         columns must cover the group keys (any directions).  Only
         checkable when every key is a plain column. *)
      if keys = [] || List.length key_cols <> List.length keys then []
      else
        let have = produced_order input in
        let n = List.length keys in
        let leading =
          List.filteri (fun i _ -> i < n) have |> List.map fst
        in
        let missing =
          List.filter
            (fun c -> not (List.exists (Props.equal_col c) leading))
            key_cols
        in
        match missing with
        | [] -> []
        | c :: _ ->
          [ Diag.error ~code:"unsorted-input"
              (Fmt.str
                 "input delivers order %s, which does not group on key %s.%s \
                  — missing Sort enforcer"
                 (Props.to_string have) c.Expr.rel c.Expr.col) ]
    in
    (out, d @ Diag.within "Stream_agg" (own @ order_diags))

let check cat p =
  let _, diags = walk cat p in
  diags
