(** Static well-formedness checking of logical operator trees.

    Verifies, without executing anything, that every column reference
    resolves, predicates are boolean-typed, projection and group-by output
    aliases are unique, join predicates reference only in-scope aliases,
    and no two base relations in a join tree share an alias.  Diagnostics
    carry the operator path from the root. *)

open Relalg

(** Codes produced: everything from {!Typecheck} plus [duplicate-alias],
    [duplicate-relation-alias], [scan-schema-qualifier], [empty-select]. *)
val check : Algebra.t -> Diag.t list
