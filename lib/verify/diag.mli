(** Structured diagnostics for the plan linter.

    A diagnostic carries a severity, a stable machine-readable [code], the
    path of operator labels from the root to the offending node, and a
    human-readable message.  Checkers return lists of diagnostics instead
    of raising, so a single lint pass reports every problem it finds. *)

type severity = Error | Warning

type t = {
  severity : severity;
  code : string;  (** stable identifier, e.g. ["unsorted-input"] *)
  path : string list;  (** operator labels, root first *)
  message : string;
}

val error : ?path:string list -> code:string -> string -> t
val warning : ?path:string list -> code:string -> string -> t

(** Prefix every diagnostic's path with one more root label. *)
val within : string -> t list -> t list

val errors : t list -> t list
val warnings : t list -> t list
val has_errors : t list -> bool

(** Is there a diagnostic with this code? *)
val mem : code:string -> t list -> bool

val pp : Format.formatter -> t -> unit
val pp_list : Format.formatter -> t list -> unit
val to_string : t -> string
