(** Plan Lint: static well-formedness and semantics-preservation checking
    for every optimizer stage.

    The paper's contract is that rewrites and enumerated plans are
    semantics-preserving — its cautionary tale being the "count bug" of
    naive aggregate-subquery unnesting (Section 4.2.2), and its physical
    property machinery (Section 3) only working when sort requirements are
    actually met.  This library checks those invariants statically:

    - {!logical} / {!Logical.check} lint a logical tree;
    - {!physical} / {!Physical.check} lint a physical plan against a
      catalog, including order-propagation analysis;
    - {!block} lints a QGM block (scoping of every clause, including
      subquery predicates and correlation);
    - {!check_rewrite} is the oracle for {!Rewrite.Rules.run}'s [~check]
      mode: schema preservation plus a count-bug shape detector, tagged
      with the offending rule's name. *)

open Relalg

module Diag = Diag
module Typecheck = Typecheck
module Logical = Logical
module Physical = Physical

val logical : Algebra.t -> Diag.t list
val physical : Storage.Catalog.t -> Exec.Plan.t -> Diag.t list

(** Non-raising variant of {!Rewrite.Qgm.block_schema}: columns whose type
    cannot be determined fall back to [Tint]. *)
val safe_block_schema : Rewrite.Qgm.block -> Schema.t

(** Lint a QGM block: every clause is checked in its proper scope (WHERE
    sees the FROM sources; outerjoin predicates see the sources joined so
    far; select/having/order-by see the grouped schema when grouping).
    [outer] supplies correlation columns visible from enclosing blocks.
    Codes as in {!Typecheck} plus [duplicate-alias],
    [duplicate-relation-alias], [subquery-arity]. *)
val block : ?outer:Schema.t -> Rewrite.Qgm.block -> Diag.t list

(** Does the rewrite keep the block's output schema up to renaming —
    same arity, same column types position by position?  Violations are
    reported with code [schema-change]. *)
val preserves_schema :
  before:Rewrite.Qgm.block -> after:Rewrite.Qgm.block -> Diag.t list

(** The rewrite oracle: {!preserves_schema}, a count-bug shape check
    (code [count-bug]: the rewrite introduced a top-level aggregate over a
    source it inner-joined into FROM instead of outerjoining, so
    zero-match groups are lost), and a {!block} well-formedness pass over
    the result — all tagged with ["rule <name>"]. *)
val check_rewrite :
  rule:string -> before:Rewrite.Qgm.block -> after:Rewrite.Qgm.block ->
  Diag.t list
