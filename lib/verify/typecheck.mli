(** A deep, non-raising expression checker.

    Unlike {!Relalg.Typing.infer} — which assigns [Tbool] to every
    comparison and connective without looking at the operands — this
    checker recurses through the whole tree, verifies every column
    reference resolves against the schema, and checks operand types of
    arithmetic, comparisons, and boolean connectives.  It never raises:
    unresolvable subexpressions yield [None] and a diagnostic, and unknown
    types propagate silently so one bad column produces one error, not a
    cascade. *)

open Relalg

(** [infer schema e] returns the type of [e] (or [None] when it cannot be
    determined) together with diagnostics.  Codes produced:
    [unknown-column], [ambiguous-column], [out-of-scope],
    [type-mismatch]. *)
val infer : Schema.t -> Expr.t -> Value.ty option * Diag.t list

(** Check an expression used as a predicate: everything {!infer} checks,
    plus the result type must be boolean ([non-boolean-predicate]). *)
val check_predicate : Schema.t -> Expr.t -> Diag.t list

(** Aggregate argument check + result type via {!Expr.agg_ty}. *)
val infer_agg : Schema.t -> Expr.agg -> Value.ty option * Diag.t list

(** Are two known types comparable under {!Value.compare} semantics —
    equal, or a numeric int/float mix? *)
val comparable : Value.ty -> Value.ty -> bool
