(* Static well-formedness checking of logical trees.  The walk recomputes
   output schemas bottom-up with non-raising fallbacks ([Tint] for
   undeterminable projection types) so one bad node does not mask checks
   elsewhere in the tree. *)

open Relalg

let dup_aliases (aliases : string list) ~code ~what : Diag.t list =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun a ->
       if Hashtbl.mem seen a then
         Some (Diag.error ~code (Fmt.str "duplicate %s %S" what a))
       else begin
         Hashtbl.replace seen a ();
         None
       end)
    aliases

(* Output columns of projections and aggregations, with a harmless [Tint]
   fallback when the item's type cannot be determined. *)
let out_column alias ty =
  Schema.column ~rel:"" ~name:alias ~ty:(Option.value ty ~default:Value.Tint)

(* Returns (output schema, base aliases contributing output tuples,
   diagnostics). *)
let rec walk (t : Algebra.t) : Schema.t * string list * Diag.t list =
  match t with
  | Algebra.Scan { table; alias; schema } ->
    let diags =
      List.filter_map
        (fun (c : Schema.column) ->
           if c.Schema.rel = alias then None
           else
             Some
               (Diag.warning ~code:"scan-schema-qualifier"
                  (Fmt.str "scan of %s as %s carries column %s.%s" table alias
                     c.Schema.rel c.Schema.name)))
        schema
    in
    (schema, [ alias ], Diag.within ("Scan " ^ alias) diags)
  | Algebra.Select (p, input) ->
    let s, aliases, d = walk input in
    (s, aliases, d @ Diag.within "Select" (Typecheck.check_predicate s p))
  | Algebra.Project (items, input) ->
    let s, aliases, d = walk input in
    let item_diags, out =
      List.fold_left
        (fun (acc, out) (e, a) ->
           let ty, de = Typecheck.infer s e in
           (acc @ de, out @ [ out_column a ty ]))
        ([], []) items
    in
    let own =
      (if items = [] then
         [ Diag.warning ~code:"empty-select" "projection with no items" ]
       else [])
      @ item_diags
      @ dup_aliases (List.map snd items) ~code:"duplicate-alias"
          ~what:"projection alias"
    in
    (out, aliases, d @ Diag.within "Project" own)
  | Algebra.Join (kind, pred, l, r) ->
    let ls, la, ld = walk l in
    let rs, ra, rd = walk r in
    let label = Algebra.join_kind_name kind ^ " join" in
    let clash =
      List.filter (fun a -> List.mem a la) ra
      |> List.map (fun a ->
          Diag.error ~code:"duplicate-relation-alias"
            (Fmt.str "alias %S bound on both sides of the join" a))
    in
    (* Join predicates see both sides, whatever the kind — semi/anti joins
       drop right columns from the *output*, not from the predicate. *)
    let env = Schema.concat ls rs in
    let own = clash @ Typecheck.check_predicate env pred in
    let out, aliases =
      match kind with
      | Algebra.Semi | Algebra.Anti -> (ls, la)
      | Algebra.Inner | Algebra.Left_outer ->
        (Schema.concat ls rs, la @ ra)
    in
    (out, aliases, ld @ rd @ Diag.within label own)
  | Algebra.Group_by { keys; aggs; input } ->
    let s, aliases, d = walk input in
    let key_diags, key_cols =
      List.fold_left
        (fun (acc, out) (e, a) ->
           let ty, de = Typecheck.infer s e in
           (acc @ de, out @ [ out_column a ty ]))
        ([], []) keys
    in
    let agg_diags, agg_cols =
      List.fold_left
        (fun (acc, out) (g, a) ->
           let ty, dg = Typecheck.infer_agg s g in
           (acc @ dg, out @ [ out_column a ty ]))
        ([], []) aggs
    in
    let own =
      key_diags @ agg_diags
      @ dup_aliases
          (List.map snd keys @ List.map snd aggs)
          ~code:"duplicate-alias" ~what:"group-by output alias"
    in
    (key_cols @ agg_cols, aliases, d @ Diag.within "Group_by" own)
  | Algebra.Distinct input ->
    let s, aliases, d = walk input in
    (s, aliases, d)
  | Algebra.Order_by (sort_keys, input) ->
    let s, aliases, d = walk input in
    let own =
      List.concat_map (fun (e, _) -> snd (Typecheck.infer s e)) sort_keys
    in
    (s, aliases, d @ Diag.within "Order_by" own)

let check t =
  let _, _, diags = walk t in
  diags
