(* Plan Lint facade: logical/physical tree linting re-exported, plus the
   QGM-level checks used as the rewrite oracle. *)

open Relalg
module Qgm = Rewrite.Qgm

module Diag = Diag
module Typecheck = Typecheck
module Logical = Logical
module Physical = Physical

let logical = Logical.check
let physical = Physical.check

(* ------------------------------------------------------------------ *)
(* Non-raising QGM schemas *)

let out_column alias ty =
  Schema.column ~rel:"" ~name:alias ~ty:(Option.value ty ~default:Value.Tint)

let rec safe_block_schema (b : Qgm.block) : Schema.t =
  let inner = safe_inner_schema b in
  if b.Qgm.aggs = [] && b.Qgm.group_by = [] then
    List.map
      (fun (e, a) -> out_column a (fst (Typecheck.infer inner e)))
      b.Qgm.select
  else
    let gs = grouped_schema inner b in
    List.map
      (fun (e, a) -> out_column a (fst (Typecheck.infer gs e)))
      b.Qgm.select

and grouped_schema inner (b : Qgm.block) : Schema.t =
  List.map
    (fun (e, a) -> out_column a (fst (Typecheck.infer inner e)))
    b.Qgm.group_by
  @ List.map
      (fun (g, a) -> out_column a (fst (Typecheck.infer_agg inner g)))
      b.Qgm.aggs

and safe_inner_schema (b : Qgm.block) : Schema.t =
  List.concat_map safe_source_schema b.Qgm.from
  @ List.concat_map
      (fun (oj : Qgm.outerjoin) -> safe_source_schema oj.Qgm.o_source)
      b.Qgm.outerjoins

and safe_source_schema = function
  | Qgm.Base { schema; _ } -> schema
  | Qgm.Derived { block; alias } ->
    Schema.requalify (safe_block_schema block) ~rel:alias

(* ------------------------------------------------------------------ *)
(* QGM block well-formedness *)

let dup ~code ~what names =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun a ->
       if Hashtbl.mem seen a then
         Some (Diag.error ~code (Fmt.str "duplicate %s %S" what a))
       else begin
         Hashtbl.replace seen a ();
         None
       end)
    names

(* An output column whose type cannot be determined (e.g. a bare NULL
   literal) silently falls back to int in [safe_block_schema]; surface
   that instead of hiding it.  Only fires when inference produced no
   other diagnostic — a column that fails to resolve is already
   reported. *)
let unknown_ty env ((e, a) : Expr.t * string) : Diag.t list =
  match Typecheck.infer env e with
  | None, [] ->
    [ Diag.warning ~code:"unknown-column-type"
        (Fmt.str
           "output column %S has an undeterminable type; the schema falls \
            back to int"
           a) ]
  | _ -> []

let rec block ?(outer = []) (b : Qgm.block) : Diag.t list =
  let from_schema = List.concat_map safe_source_schema b.Qgm.from in
  let inner = safe_inner_schema b in
  let grouped = b.Qgm.group_by <> [] || b.Qgm.aggs <> [] in
  (* WHERE runs before semijoins/outerjoins attach (see Lower), so its
     conjuncts see only the FROM sources plus correlation columns. *)
  let where_env = Schema.concat from_schema outer in
  let check_pred env label (p : Qgm.predicate) =
    match p with
    | Qgm.P e -> Diag.within label (Typecheck.check_predicate env e)
    | Qgm.In_sub (e, blk) ->
      Diag.within label
        (snd (Typecheck.infer env e)
         @ subquery_arity 1 blk
         @ block ~outer:env blk)
    | Qgm.Exists_sub (_, blk) -> Diag.within label (block ~outer:env blk)
    | Qgm.Cmp_sub (_, e, blk) ->
      Diag.within label
        (snd (Typecheck.infer env e)
         @ subquery_arity 1 blk
         @ block ~outer:env blk)
  in
  let source_diags =
    List.concat_map (source_check ~outer) b.Qgm.from
    @ List.concat_map
        (fun (sj : Qgm.semijoin) -> source_check ~outer sj.Qgm.s_source)
        b.Qgm.semijoins
    @ List.concat_map
        (fun (oj : Qgm.outerjoin) -> source_check ~outer oj.Qgm.o_source)
        b.Qgm.outerjoins
  in
  let alias_diags =
    dup ~code:"duplicate-relation-alias" ~what:"relation alias"
      (Qgm.bound_aliases b)
  in
  let where_diags = List.concat_map (check_pred where_env "where") b.Qgm.where in
  (* each semijoin predicate sees the FROM sources plus its own source *)
  let semi_diags =
    List.concat_map
      (fun (sj : Qgm.semijoin) ->
         let env =
           Schema.concat
             (Schema.concat from_schema (safe_source_schema sj.Qgm.s_source))
             outer
         in
         Diag.within "semijoin" (Typecheck.check_predicate env sj.Qgm.s_pred))
      b.Qgm.semijoins
  in
  (* outerjoins attach left to right: the nth predicate sees the FROM
     sources and outerjoin sources 0..n *)
  let _, outer_diags =
    List.fold_left
      (fun (env, acc) (oj : Qgm.outerjoin) ->
         let env = Schema.concat env (safe_source_schema oj.Qgm.o_source) in
         ( env,
           acc
           @ Diag.within "outerjoin"
               (Typecheck.check_predicate (Schema.concat env outer)
                  oj.Qgm.o_pred) ))
      (from_schema, []) b.Qgm.outerjoins
  in
  let group_env = Schema.concat inner outer in
  let group_diags =
    Diag.within "group-by"
      (List.concat_map
         (fun (e, _) -> snd (Typecheck.infer group_env e))
         b.Qgm.group_by
       @ List.concat_map
           (fun (g, _) -> snd (Typecheck.infer_agg group_env g))
           b.Qgm.aggs
       @ dup ~code:"duplicate-alias" ~what:"group-by output alias"
           (List.map snd b.Qgm.group_by @ List.map snd b.Qgm.aggs))
  in
  (* select / having / order-by see the grouped schema when grouping *)
  let top_env =
    Schema.concat (if grouped then grouped_schema inner b else inner) outer
  in
  let select_diags =
    Diag.within "select"
      (List.concat_map
         (fun (e, _) -> snd (Typecheck.infer top_env e))
         b.Qgm.select
       @ List.concat_map (unknown_ty top_env) b.Qgm.select
       @ dup ~code:"duplicate-alias" ~what:"select alias"
           (List.map snd b.Qgm.select))
  in
  let having_diags =
    List.concat_map (check_pred top_env "having") b.Qgm.having
  in
  let order_diags =
    Diag.within "order-by"
      (List.concat_map
         (fun (e, _) -> snd (Typecheck.infer top_env e))
         b.Qgm.order_by)
  in
  source_diags @ alias_diags @ where_diags @ semi_diags @ outer_diags
  @ group_diags @ select_diags @ having_diags @ order_diags

and source_check ~outer = function
  | Qgm.Base _ -> []
  | Qgm.Derived { block = blk; alias } ->
    Diag.within ("view " ^ alias) (block ~outer blk)

and subquery_arity n blk =
  let arity = Schema.arity (safe_block_schema blk) in
  if arity = n then []
  else
    [ Diag.error ~code:"subquery-arity"
        (Fmt.str "subquery produces %d columns, expected %d" arity n) ]

(* ------------------------------------------------------------------ *)
(* Semantics preservation *)

let preserves_schema ~(before : Qgm.block) ~(after : Qgm.block) : Diag.t list =
  let sb = safe_block_schema before in
  let sa = safe_block_schema after in
  if Schema.arity sb <> Schema.arity sa then
    [ Diag.error ~code:"schema-change"
        (Fmt.str "output arity changed from %d %a to %d %a" (Schema.arity sb)
           Schema.pp sb (Schema.arity sa) Schema.pp sa) ]
  else
    List.concat
      (List.map2
         (fun (cb : Schema.column) (ca : Schema.column) ->
            if cb.Schema.ty = ca.Schema.ty then []
            else
              [ Diag.error ~code:"schema-change"
                  (Fmt.str "output column %s changed type from %s to %s"
                     ca.Schema.name (Value.ty_name cb.Schema.ty)
                     (Value.ty_name ca.Schema.ty)) ])
         sb sa)

(* The count-bug shape (Section 4.2.2): a rewrite that unnests an
   aggregate subquery introduces a top-level aggregate over a view it
   joined into FROM.  With a plain inner join, outer tuples with no match
   disappear instead of aggregating to 0/NULL — the view must be attached
   with an outerjoin.  We flag any rewrite that (a) introduces top-level
   aggregation and (b) aggregates over a source it newly inner-joined. *)
let count_bug ~(before : Qgm.block) ~(after : Qgm.block) : Diag.t list =
  if before.Qgm.aggs <> [] || after.Qgm.aggs = [] then []
  else
    let aliases_of b = List.map Qgm.alias_of_source b.Qgm.from in
    let old_aliases = aliases_of before in
    let new_aliases =
      List.filter (fun a -> not (List.mem a old_aliases)) (aliases_of after)
    in
    List.concat_map
      (fun (g, out) ->
         match Expr.agg_arg g with
         | None -> []
         | Some arg ->
           let refs = Expr.relations arg in
           let offending = List.filter (fun r -> List.mem r new_aliases) refs in
           (match offending with
            | [] -> []
            | r :: _ ->
              [ Diag.error ~code:"count-bug"
                  (Fmt.str
                     "aggregate %S ranges over inner-joined view %S: \
                      zero-match outer tuples are lost (use an outerjoin)"
                     out r) ]))
      after.Qgm.aggs

let check_rewrite ~rule ~before ~after : Diag.t list =
  Diag.within ("rule " ^ rule)
    (preserves_schema ~before ~after @ count_bug ~before ~after @ block after)
