(** Static checking of physical plans.

    Three families of checks, none of which execute the plan:

    - {b well-formedness}: every table exists in the catalog, every column
      reference and predicate typechecks against the operator's input
      schema, hash/merge join key pairs resolve on their respective sides
      with comparable types;
    - {b order propagation} (the physical-property machinery of Section 3):
      the sort order each operator delivers is computed bottom-up and
      checked against the requirements of [Merge_join] (both inputs sorted
      ascending on the key pairs) and [Stream_agg] (input grouped on the
      keys) — a violation means a missing [Sort] enforcer;
    - {b index validity}: [Index_scan] needs a catalog index whose leading
      column matches, [Index_nl] needs the named index with the probed
      columns a key prefix and one probe expression per column. *)

(** The sort order a plan delivers, computed bottom-up: index scans
    deliver their key column ascending, [Sort] delivers its keys, joins
    preserve the outer/left (probe) order, hash operators destroy order,
    [Project]/[Stream_agg] remap order columns through their output
    aliases. *)
val produced_order : Exec.Plan.t -> Cost.Physical_props.order

(** Codes produced: everything from {!Typecheck} plus [unknown-table],
    [unknown-index], [index-prefix-mismatch], [probe-arity],
    [key-type-mismatch], [unsorted-input], [duplicate-alias],
    [merge-join-no-keys]. *)
val check : Storage.Catalog.t -> Exec.Plan.t -> Diag.t list
