(* Deep, non-raising expression checking (see the .mli).  The typing rules
   mirror [Relalg.Typing] exactly, so anything this checker accepts the
   planner will also accept; the difference is that bad operands are
   reported instead of silently typed [Tbool]. *)

open Relalg

let numeric = function Value.Tint | Value.Tfloat -> true | _ -> false

let comparable a b = a = b || (numeric a && numeric b)

(* Resolve a column reference, classifying the failure mode:
   - qualifier present but no such alias in scope -> out-of-scope
   - alias in scope (or unqualified) but no such column -> unknown-column
   - unqualified and matching several columns -> ambiguous-column *)
let resolve (schema : Schema.t) ({ rel; col } : Expr.col_ref) :
  Value.ty option * Diag.t list =
  match Schema.find_opt schema ~rel ~name:col with
  | Some (_, c) -> (Some c.Schema.ty, [])
  | None ->
    let in_scope =
      rel = "" || List.exists (fun (c : Schema.column) -> c.Schema.rel = rel) schema
    in
    let code = if in_scope then "unknown-column" else "out-of-scope" in
    let shown = if rel = "" then col else rel ^ "." ^ col in
    ( None,
      [ Diag.error ~code
          (Fmt.str "column %s does not resolve in %a" shown Schema.pp schema) ] )
  | exception Failure _ ->
    ( None,
      [ Diag.error ~code:"ambiguous-column"
          (Fmt.str "unqualified column %s is ambiguous in %a" col Schema.pp
             schema) ] )

let value_ty (v : Value.t) : Value.ty option = Value.type_of v

(* The arithmetic typing table of [Relalg.Typing.infer]. *)
let binop_ty op ta tb : Value.ty option * Diag.t list =
  match (op, ta, tb) with
  | Expr.Add, Value.Tstring, Value.Tstring -> (Some Value.Tstring, [])
  | (Expr.Add | Expr.Sub | Expr.Mul | Expr.Mod | Expr.Div), Value.Tint,
    Value.Tint ->
    (Some Value.Tint, [])
  | _, (Value.Tint | Value.Tfloat), (Value.Tint | Value.Tfloat) ->
    (Some Value.Tfloat, [])
  | _ ->
    ( None,
      [ Diag.error ~code:"type-mismatch"
          (Fmt.str "arithmetic %s on %s and %s" (Expr.binop_name op)
             (Value.ty_name ta) (Value.ty_name tb)) ] )

let rec infer (schema : Schema.t) (e : Expr.t) :
  Value.ty option * Diag.t list =
  match e with
  | Expr.Const v -> (value_ty v, [])
  | Expr.Col c -> resolve schema c
  | Expr.Binop (op, a, b) -> (
    let ta, da = infer schema a in
    let tb, db = infer schema b in
    match (ta, tb) with
    | Some ta, Some tb ->
      let ty, d = binop_ty op ta tb in
      (ty, da @ db @ d)
    | _ -> (None, da @ db))
  | Expr.Cmp (op, a, b) -> (
    let ta, da = infer schema a in
    let tb, db = infer schema b in
    match (ta, tb) with
    | Some ta, Some tb when not (comparable ta tb) ->
      ( Some Value.Tbool,
        da @ db
        @ [ Diag.error ~code:"type-mismatch"
              (Fmt.str "comparison %s between %s and %s" (Expr.cmp_name op)
                 (Value.ty_name ta) (Value.ty_name tb)) ] )
    | _ -> (Some Value.Tbool, da @ db))
  | Expr.And (a, b) | Expr.Or (a, b) ->
    let da = boolean_operand schema a in
    let db = boolean_operand schema b in
    (Some Value.Tbool, da @ db)
  | Expr.Not a -> (Some Value.Tbool, boolean_operand schema a)
  | Expr.Is_null a ->
    let _, d = infer schema a in
    (Some Value.Tbool, d)
  | Expr.Udf (_, args) ->
    (* UDFs act as user-defined predicates; argument types are the UDF's
       own business, but the references must still resolve. *)
    (Some Value.Tbool, List.concat_map (fun a -> snd (infer schema a)) args)

and boolean_operand schema e =
  let ty, d = infer schema e in
  match ty with
  | Some Value.Tbool | None -> d
  | Some ty ->
    d
    @ [ Diag.error ~code:"type-mismatch"
          (Fmt.str "boolean connective applied to %s operand %a"
             (Value.ty_name ty) Expr.pp e) ]

let check_predicate schema e =
  let ty, d = infer schema e in
  match ty with
  | Some Value.Tbool | None -> d
  | Some ty ->
    d
    @ [ Diag.error ~code:"non-boolean-predicate"
          (Fmt.str "predicate %a has type %s, expected bool" Expr.pp e
             (Value.ty_name ty)) ]

let infer_agg schema (a : Expr.agg) : Value.ty option * Diag.t list =
  match Expr.agg_arg a with
  | None -> (Some (Expr.agg_ty a None), [])
  | Some arg ->
    let ty, d = infer schema arg in
    (Some (Expr.agg_ty a ty), d)
