(* Structured diagnostics for the plan linter. *)

type severity = Error | Warning

type t = {
  severity : severity;
  code : string;
  path : string list;
  message : string;
}

let error ?(path = []) ~code message = { severity = Error; code; path; message }

let warning ?(path = []) ~code message =
  { severity = Warning; code; path; message }

let within label diags =
  List.map (fun d -> { d with path = label :: d.path }) diags

let errors = List.filter (fun d -> d.severity = Error)
let warnings = List.filter (fun d -> d.severity = Warning)
let has_errors diags = errors diags <> []
let mem ~code diags = List.exists (fun d -> d.code = code) diags

let pp ppf d =
  let sev = match d.severity with Error -> "error" | Warning -> "warning" in
  match d.path with
  | [] -> Fmt.pf ppf "%s [%s]: %s" sev d.code d.message
  | p ->
    Fmt.pf ppf "%s [%s] at %s: %s" sev d.code (String.concat "/" p) d.message

let pp_list ppf = function
  | [] -> Fmt.pf ppf "no diagnostics"
  | ds -> Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp) ds

let to_string d = Fmt.str "%a" pp d
