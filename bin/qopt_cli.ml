(* qopt — a small CLI over the optimizer pipeline.

   The CLI operates on one of the built-in demo databases:
     emp   the paper's Emp/Dept schema (default)
     star  an OLAP star schema (Sales + 3 dimensions)

   Commands:
     qopt run "SELECT ..."        optimize, execute, print rows
     qopt explain "SELECT ..."    print rewrites and the physical plan
     qopt tables                  list tables, row counts, statistics *)

open Relalg

let load = function
  | "emp" ->
    let w = Workload.Schemas.emp_dept ~emps:5000 ~depts:100 () in
    (w.Workload.Schemas.cat, w.Workload.Schemas.db)
  | "star" ->
    let w = Workload.Schemas.star ~fact_rows:20000 ~dim_rows:100 ~dims:3 () in
    (w.Workload.Schemas.cat, w.Workload.Schemas.db)
  | s -> failwith ("unknown demo database: " ^ s ^ " (use emp or star)")

let optimizer_config = function
  | "systemr" -> Core.Pipeline.default_config
  | "bushy" ->
    { Core.Pipeline.default_config with
      join_config = { Systemr.Join_order.default_config with bushy = true } }
  | "naive" -> Core.Pipeline.naive_config
  | s -> failwith ("unknown optimizer: " ^ s ^ " (use systemr, bushy or naive)")

(* Parse and bind as separate steps so they show up as the first two
   spans of the query's telemetry tree. *)
let with_query ?spans db_name sql f =
  let in_span name g =
    match spans with
    | None -> g ()
    | Some r -> Obs.Span.with_span r name g
  in
  let cat, db = in_span "load" (fun () -> load db_name) in
  match
    let stmts = in_span "parse" (fun () -> Sql.Parser.parse sql) in
    in_span "bind" (fun () -> Sql.Binder.bind_script cat stmts)
  with
  | q -> f cat db q
  | exception Sql.Parser.Error m ->
    Printf.eprintf "parse error: %s\n" m;
    exit 1
  | exception Sql.Binder.Error m ->
    Printf.eprintf "binding error: %s\n" m;
    exit 1
  | exception Sql.Lexer.Error m ->
    Printf.eprintf "lexical error: %s\n" m;
    exit 1

(* Print lint diagnostics collected in the per-block reports; exits 2 on
   errors so --lint works as a CI gate. *)
let print_diags reports =
  let diags = List.concat_map (fun r -> r.Core.Pipeline.diags) reports in
  Fmt.pr "-- lint: %a@." Verify.Diag.pp_list diags;
  if Verify.Diag.has_errors diags then exit 2

let engine_of_string = function
  | "batch" -> `Batch
  | "interpreted" -> `Interpreted
  | s -> failwith ("unknown engine: " ^ s ^ " (use batch or interpreted)")

(* The feedback cache / sketch registry is created once per process and
   carried in the config, so --repeat runs share it and later
   optimizations see what earlier executions recorded. *)
let estimator_of_string = function
  | "histogram" -> `Histogram
  | "feedback" -> `Feedback (Stats.Feedback.create ())
  | "sketch" -> `Sketch (Stats.Sketch.registry_create ())
  | s ->
    failwith
      ("unknown estimator: " ^ s ^ " (use histogram, feedback or sketch)")

(* --bushy / --left-deep override the optimizer preset's tree shape, so the
   CLI drives exactly the code paths the enumeration bench measures. *)
let apply_tree tree (config : Core.Pipeline.config) =
  match tree with
  | `Default -> config
  | `Bushy ->
    { config with
      Core.Pipeline.join_config =
        { config.Core.Pipeline.join_config with
          Systemr.Join_order.bushy = true } }
  | `Left_deep ->
    { config with
      Core.Pipeline.join_config =
        { config.Core.Pipeline.join_config with
          Systemr.Join_order.bushy = false } }

let print_opt_stats reports wall_s =
  let c =
    List.fold_left
      (fun acc r ->
         Systemr.Join_order.counters_add acc r.Core.Pipeline.enum)
      Systemr.Join_order.counters_zero reports
  in
  Fmt.pr
    "-- opt: subsets=%d splits=%d costed=%d pruned=%d wall_ms=%.2f@."
    c.Systemr.Join_order.subsets c.Systemr.Join_order.splits
    c.Systemr.Join_order.costed c.Systemr.Join_order.pruned
    (wall_s *. 1000.)

(* Write every block's optimizer trace as line-delimited JSON. *)
let write_trace_json file reports =
  let oc = open_out file in
  List.iter
    (fun r ->
       List.iter
         (fun e ->
            output_string oc (Obs.Trace.to_json e);
            output_char oc '\n')
         r.Core.Pipeline.trace_events)
    reports;
  close_out oc

(* The qlog record for one CLI run: digests (timed into the
   digest_seconds histogram), per-stage micros from the span tree, root
   est/act rows and worst q-error from the recorders, feedback-cache
   traffic from the estimator. *)
let qlog_record ~sql ~estimator ~est_mode ~engine ~dop ~rows ~wall ~root
    ~reports ~recorders : Obs.Qlog.t =
  let td = Obs.Clock.now () in
  let query_digest = Obs.Trace.digest (String.trim sql) in
  let plan_digest =
    Obs.Trace.digest
      (String.concat ";"
         (List.filter_map
            (fun (r : Core.Pipeline.report) ->
               Option.map (Fmt.str "%a" Exec.Plan.pp) r.Core.Pipeline.plan)
            reports))
  in
  Obs.Metrics.observe_hist Obs.Metrics.digest_seconds
    (Obs.Clock.elapsed_s td);
  let stages =
    match root with
    | None -> []
    | Some r ->
      List.filter_map
        (fun n ->
           let d = Obs.Span.dur_by_name r n in
           if d > 0. then Some (n, d *. 1e6) else None)
        [ "parse"; "bind"; "rewrite"; "optimize"; "verify"; "execute" ]
  in
  let est_rows, act_rows =
    match recorders with
    | r :: _ -> (
      match Exec.Instrument.ops r with
      | (op : Exec.Instrument.op) :: _ ->
        ( op.Exec.Instrument.est_rows,
          if op.Exec.Instrument.executed then
            Some (float_of_int op.Exec.Instrument.act_rows)
          else None )
      | [] -> (None, None))
    | [] -> (None, None)
  in
  let max_qerror =
    List.fold_left
      (fun acc r ->
         match Obs.Analyze.max_q_error r with
         | Some (q, _) when Float.is_finite q ->
           Some (match acc with Some a -> Float.max a q | None -> q)
         | _ -> acc)
      None recorders
  in
  let feedback_hits, feedback_misses =
    match est_mode with
    | `Feedback fb -> (Stats.Feedback.hits fb, Stats.Feedback.misses fb)
    | _ -> (0, 0)
  in
  { Obs.Qlog.ts_us = int_of_float (Unix.gettimeofday () *. 1e6);
    query_digest; plan_digest; estimator; engine; dop = max 1 dop; rows;
    total_us = wall *. 1e6; stages; est_rows; act_rows; max_qerror;
    feedback_hits; feedback_misses }

let run_cmd db_name opt engine dop estimator repeat lint analysis limit tree
    opt_stats analyze trace_json metrics profile_json metrics_out query_log
    print_spans sql =
  let want_spans =
    profile_json <> None || query_log <> None || print_spans
  in
  let spans = if want_spans then Some (Obs.Span.create ()) else None in
  with_query ?spans db_name sql (fun cat db block ->
      let est_mode = estimator_of_string estimator in
      let config =
        apply_tree tree
          { (optimizer_config opt) with
            Core.Pipeline.lint;
            analysis;
            engine = engine_of_string engine;
            dop = max 1 dop;
            estimator = est_mode;
            instrument =
              analyze || trace_json <> None || profile_json <> None;
            spans }
      in
      (* Warm-up repeats share the estimator state: under --estimator
         feedback/sketch, the final (printed) run re-optimizes with the
         actual cardinalities / sketches its predecessors recorded.
         They run span-less so the telemetry tree covers only the
         printed run. *)
      for _ = 2 to max 1 repeat do
        ignore
          (Core.Pipeline.run_query
             ~config:{ config with Core.Pipeline.spans = None }
             cat db block)
      done;
      let ctx = Exec.Context.create () in
      let t0 = Obs.Clock.now () in
      let result, pairs =
        Core.Pipeline.run_query_full ~ctx ~config cat db block
      in
      let wall = Obs.Clock.elapsed_s t0 in
      let reports = List.map fst pairs in
      let analyze_text =
        if not analyze then None
        else
          let many = List.length pairs > 1 in
          Some
            (String.concat ""
               (List.mapi
                  (fun i (_, recorder) ->
                     (if many then
                        Printf.sprintf "-- union arm %d\n" (i + 1)
                      else "")
                     ^
                     match recorder with
                     | Some r -> Obs.Analyze.render r
                     | None ->
                       "(correlated query: tuple-iteration interpreter — \
                        no per-operator statistics)\n")
                  pairs))
      in
      let n = Array.length result.Exec.Executor.rows in
      Fmt.pr "%a@." Schema.pp result.Exec.Executor.schema;
      Array.iteri
        (fun i t -> if i < limit then Fmt.pr "%a@." Tuple.pp t)
        result.Exec.Executor.rows;
      if n > limit then Fmt.pr "... (%d more rows)@." (n - limit);
      Fmt.pr "-- %d rows; %a; path: %s@." n Exec.Context.pp ctx
        (String.concat "+"
           (List.map
              (fun r ->
                 match r.Core.Pipeline.path with
                 | Core.Pipeline.Planned -> "planned"
                 | Core.Pipeline.Interpreted -> "interpreted")
              reports));
      (match analyze_text with
       | Some text -> Fmt.pr "-- analyze:@.%s" text
       | None -> ());
      (match trace_json with
       | Some file -> write_trace_json file reports
       | None -> ());
      (* close the span tree before anything renders or logs it *)
      let root = Option.map Obs.Span.finish spans in
      (match root with
       | Some r when print_spans -> Fmt.pr "-- spans:@.%s" (Obs.Span.render r)
       | _ -> ());
      (match profile_json with
       | Some file ->
         let recorders =
           List.mapi
             (fun i (_, recorder) ->
                Option.map
                  (fun r -> (Printf.sprintf "block %d" (i + 1), r))
                  recorder)
             pairs
           |> List.filter_map Fun.id
         in
         Obs.Profile.write_file ?span:root recorders file
       | None -> ());
      (match query_log with
       | Some file ->
         Obs.Qlog.append ~path:file
           (qlog_record ~sql ~estimator ~est_mode ~engine ~dop ~rows:n ~wall
              ~root ~reports
              ~recorders:(List.filter_map snd pairs))
       | None -> ());
      (match metrics_out with
       | Some file -> Obs.Prometheus.write_file file
       | None -> ());
      if opt_stats then print_opt_stats reports wall;
      if metrics then print_endline (Obs.Metrics.render ());
      if lint || analysis then print_diags reports)

let explain_cmd db_name opt lint analysis tree sql =
  with_query db_name sql (fun cat db block ->
      let config =
        apply_tree tree
          { (optimizer_config opt) with Core.Pipeline.lint; analysis }
      in
      print_endline (Core.Pipeline.explain_query ~config cat db block))

let tables_cmd db_name =
  let cat, db = load db_name in
  List.iter
    (fun name ->
       let t = Storage.Catalog.table cat name in
       Fmt.pr "%a@." Storage.Table.pp t;
       List.iter
         (fun idx -> Fmt.pr "  %a@." Storage.Btree.pp idx)
         (Storage.Catalog.indexes cat name);
       match Stats.Table_stats.find db name with
       | Some ts -> Fmt.pr "  @[<v>%a@]@." Stats.Table_stats.pp ts
       | None -> ())
    (Storage.Catalog.table_names cat)

(* ------------------------------------------------------------------ *)

open Cmdliner

let db_arg =
  Arg.(value & opt string "emp"
       & info [ "d"; "database" ] ~docv:"DB"
           ~doc:"Demo database to query: emp or star.")

let opt_arg =
  Arg.(value & opt string "systemr"
       & info [ "o"; "optimizer" ] ~docv:"OPT"
           ~doc:"Optimizer pipeline: systemr, bushy or naive (no rewrites).")

let limit_arg =
  Arg.(value & opt int 20
       & info [ "n"; "limit" ] ~docv:"N" ~doc:"Rows to print.")

let engine_arg =
  Arg.(value & opt string "batch"
       & info [ "e"; "engine" ] ~docv:"ENGINE"
           ~doc:"Plan execution engine: batch (vectorized) or interpreted \
                 (tuple-at-a-time oracle). Both produce identical rows and \
                 cost accounting.")

let dop_arg =
  Arg.(value & opt int 1
       & info [ "dop" ] ~docv:"N"
           ~doc:"Degree of parallelism for plan execution (batch engine \
                 only). N > 1 runs plans on the morsel-driven parallel \
                 engine, with per-operator parallelism taken from the \
                 two-phase segment schedule; rows and cost accounting are \
                 bit-identical to --dop 1.")

let estimator_arg =
  Arg.(value & opt string "histogram"
       & info [ "estimator" ] ~docv:"EST"
           ~doc:"Cardinality estimator: histogram (stock derivation), \
                 feedback (cache actual cardinalities from execution and \
                 reuse them on re-optimization) or sketch (Fast-AGMS \
                 sketches built during batch/morsel scans drive join \
                 selectivities). feedback and sketch pay off with \
                 --repeat > 1: the state persists across repeats.")

let repeat_arg =
  Arg.(value & opt int 1
       & info [ "repeat" ] ~docv:"N"
           ~doc:"Run the query N times (printing the last run). With \
                 --estimator feedback or sketch, later runs re-optimize \
                 using what earlier executions recorded.")

let lint_arg =
  Arg.(value & flag
       & info [ "lint" ]
           ~doc:"Statically verify every rewrite step and physical plan; \
                 print diagnostics (exit 2 on lint errors under run).")

let analysis_arg =
  Arg.(value & flag
       & info [ "analysis" ]
           ~doc:"Abstract-interpretation pass: fold provably-empty \
                 subtrees, derive transitive range predicates, and lint \
                 cardinality estimates against the provable envelope \
                 (est-above-envelope, est-below-envelope, \
                 est-zero-nonempty); prints diagnostics under run.")

let tree_arg =
  Arg.(value
       & vflag `Default
           [ (`Bushy,
              info [ "bushy" ]
                ~doc:"Enumerate bushy join trees (overrides the optimizer \
                      preset's shape).");
             (`Left_deep,
              info [ "left-deep" ]
                ~doc:"Enumerate left-deep join trees only (overrides the \
                      optimizer preset's shape).") ])

let opt_stats_arg =
  Arg.(value & flag
       & info [ "opt-stats" ]
           ~doc:"Print enumeration counters (DP subsets, splits considered, \
                 plans costed, plans pruned) and end-to-end wall time.")

let analyze_arg =
  Arg.(value & flag
       & info [ "analyze" ]
           ~doc:"EXPLAIN ANALYZE: execute with per-operator instrumentation \
                 and print estimated vs. actual rows, q-error, rescans, \
                 counter deltas and wall time for every operator.")

let trace_json_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-json" ] ~docv:"FILE"
           ~doc:"Write the structured optimizer trace (rewrites fired and \
                 rejected, per-level enumeration counters, prunes, \
                 interesting-order retentions, memo statistics) to FILE as \
                 line-delimited JSON.")

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Print the process-wide metrics registry (queries run, \
                 blocks planned, max q-error, ...) after the query.")

let profile_json_arg =
  Arg.(value & opt (some string) None
       & info [ "profile-json" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace-event profile to FILE: the query's \
                 span tree (parse, bind, rewrite, optimize, verify, \
                 execute) on one track plus, at --dop > 1, each morsel \
                 worker's task timeline on its own track. Load it in \
                 Perfetto (ui.perfetto.dev) or chrome://tracing.")

let metrics_out_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Write the metrics registry (counters, gauges, latency \
                 histograms with cumulative buckets) to FILE in \
                 Prometheus text exposition format.")

let query_log_arg =
  Arg.(value & opt (some string) None
       & info [ "query-log" ] ~docv:"FILE"
           ~doc:"Append one NDJSON record for this run to FILE: query and \
                 plan digests, per-stage latencies, estimated vs. actual \
                 root rows, worst q-error, and feedback-cache traffic.")

let spans_arg =
  Arg.(value & flag
       & info [ "spans" ]
           ~doc:"Print the query's span tree (wall-clock per pipeline \
                 stage, nested) after the rows.")

let sql_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL")

let run_t =
  Cmd.v (Cmd.info "run" ~doc:"Optimize and execute a SQL query")
    Term.(
      const run_cmd $ db_arg $ opt_arg $ engine_arg $ dop_arg
      $ estimator_arg $ repeat_arg $ lint_arg $ analysis_arg
      $ limit_arg $ tree_arg $ opt_stats_arg $ analyze_arg $ trace_json_arg
      $ metrics_arg $ profile_json_arg $ metrics_out_arg $ query_log_arg
      $ spans_arg $ sql_arg)

let explain_t =
  Cmd.v (Cmd.info "explain" ~doc:"Show rewrites and the chosen physical plan")
    Term.(
      const explain_cmd $ db_arg $ opt_arg $ lint_arg $ analysis_arg
      $ tree_arg $ sql_arg)

let tables_t =
  Cmd.v (Cmd.info "tables" ~doc:"List tables, indexes and statistics")
    Term.(const tables_cmd $ db_arg)

let main =
  Cmd.group
    (Cmd.info "qopt" ~version:"1.0"
       ~doc:"Cost-based SQL query optimizer (PODS'98 survey reproduction)")
    [ run_t; explain_t; tables_t ]

let () = exit (Cmd.eval main)
