(* qopt — a small CLI over the optimizer pipeline.

   The CLI operates on one of the built-in demo databases:
     emp   the paper's Emp/Dept schema (default)
     star  an OLAP star schema (Sales + 3 dimensions)

   Commands:
     qopt run "SELECT ..."        optimize, execute, print rows
     qopt explain "SELECT ..."    print rewrites and the physical plan
     qopt tables                  list tables, row counts, statistics *)

open Relalg

let load = function
  | "emp" ->
    let w = Workload.Schemas.emp_dept ~emps:5000 ~depts:100 () in
    (w.Workload.Schemas.cat, w.Workload.Schemas.db)
  | "star" ->
    let w = Workload.Schemas.star ~fact_rows:20000 ~dim_rows:100 ~dims:3 () in
    (w.Workload.Schemas.cat, w.Workload.Schemas.db)
  | s -> failwith ("unknown demo database: " ^ s ^ " (use emp or star)")

let optimizer_config = function
  | "systemr" -> Core.Pipeline.default_config
  | "bushy" ->
    { Core.Pipeline.default_config with
      join_config = { Systemr.Join_order.default_config with bushy = true } }
  | "naive" -> Core.Pipeline.naive_config
  | s -> failwith ("unknown optimizer: " ^ s ^ " (use systemr, bushy or naive)")

let with_query db_name sql f =
  let cat, db = load db_name in
  match Sql.Binder.query_of_string cat sql with
  | q -> f cat db q
  | exception Sql.Parser.Error m ->
    Printf.eprintf "parse error: %s\n" m;
    exit 1
  | exception Sql.Binder.Error m ->
    Printf.eprintf "binding error: %s\n" m;
    exit 1
  | exception Sql.Lexer.Error m ->
    Printf.eprintf "lexical error: %s\n" m;
    exit 1

(* Print lint diagnostics collected in the per-block reports; exits 2 on
   errors so --lint works as a CI gate. *)
let print_diags reports =
  let diags = List.concat_map (fun r -> r.Core.Pipeline.diags) reports in
  Fmt.pr "-- lint: %a@." Verify.Diag.pp_list diags;
  if Verify.Diag.has_errors diags then exit 2

let engine_of_string = function
  | "batch" -> `Batch
  | "interpreted" -> `Interpreted
  | s -> failwith ("unknown engine: " ^ s ^ " (use batch or interpreted)")

(* The feedback cache / sketch registry is created once per process and
   carried in the config, so --repeat runs share it and later
   optimizations see what earlier executions recorded. *)
let estimator_of_string = function
  | "histogram" -> `Histogram
  | "feedback" -> `Feedback (Stats.Feedback.create ())
  | "sketch" -> `Sketch (Stats.Sketch.registry_create ())
  | s ->
    failwith
      ("unknown estimator: " ^ s ^ " (use histogram, feedback or sketch)")

(* --bushy / --left-deep override the optimizer preset's tree shape, so the
   CLI drives exactly the code paths the enumeration bench measures. *)
let apply_tree tree (config : Core.Pipeline.config) =
  match tree with
  | `Default -> config
  | `Bushy ->
    { config with
      Core.Pipeline.join_config =
        { config.Core.Pipeline.join_config with
          Systemr.Join_order.bushy = true } }
  | `Left_deep ->
    { config with
      Core.Pipeline.join_config =
        { config.Core.Pipeline.join_config with
          Systemr.Join_order.bushy = false } }

let print_opt_stats reports wall_s =
  let c =
    List.fold_left
      (fun acc r ->
         Systemr.Join_order.counters_add acc r.Core.Pipeline.enum)
      Systemr.Join_order.counters_zero reports
  in
  Fmt.pr
    "-- opt: subsets=%d splits=%d costed=%d pruned=%d wall_ms=%.2f@."
    c.Systemr.Join_order.subsets c.Systemr.Join_order.splits
    c.Systemr.Join_order.costed c.Systemr.Join_order.pruned
    (wall_s *. 1000.)

(* Write every block's optimizer trace as line-delimited JSON. *)
let write_trace_json file reports =
  let oc = open_out file in
  List.iter
    (fun r ->
       List.iter
         (fun e ->
            output_string oc (Obs.Trace.to_json e);
            output_char oc '\n')
         r.Core.Pipeline.trace_events)
    reports;
  close_out oc

let run_cmd db_name opt engine dop estimator repeat lint analysis limit tree
    opt_stats analyze trace_json metrics sql =
  with_query db_name sql (fun cat db block ->
      let config =
        apply_tree tree
          { (optimizer_config opt) with
            Core.Pipeline.lint;
            analysis;
            engine = engine_of_string engine;
            dop = max 1 dop;
            estimator = estimator_of_string estimator;
            instrument = analyze || trace_json <> None }
      in
      (* Warm-up repeats share the estimator state: under --estimator
         feedback/sketch, the final (printed) run re-optimizes with the
         actual cardinalities / sketches its predecessors recorded. *)
      for _ = 2 to max 1 repeat do
        ignore (Core.Pipeline.run_query ~config cat db block)
      done;
      let ctx = Exec.Context.create () in
      let t0 = Unix.gettimeofday () in
      let result, reports, analyze_text =
        if analyze then
          let result, reports, text =
            Core.Pipeline.analyze_query ~ctx ~config cat db block
          in
          (result, reports, Some text)
        else
          let result, reports =
            Core.Pipeline.run_query ~ctx ~config cat db block
          in
          (result, reports, None)
      in
      let wall = Unix.gettimeofday () -. t0 in
      let n = Array.length result.Exec.Executor.rows in
      Fmt.pr "%a@." Schema.pp result.Exec.Executor.schema;
      Array.iteri
        (fun i t -> if i < limit then Fmt.pr "%a@." Tuple.pp t)
        result.Exec.Executor.rows;
      if n > limit then Fmt.pr "... (%d more rows)@." (n - limit);
      Fmt.pr "-- %d rows; %a; path: %s@." n Exec.Context.pp ctx
        (String.concat "+"
           (List.map
              (fun r ->
                 match r.Core.Pipeline.path with
                 | Core.Pipeline.Planned -> "planned"
                 | Core.Pipeline.Interpreted -> "interpreted")
              reports));
      (match analyze_text with
       | Some text -> Fmt.pr "-- analyze:@.%s" text
       | None -> ());
      (match trace_json with
       | Some file -> write_trace_json file reports
       | None -> ());
      if opt_stats then print_opt_stats reports wall;
      if metrics then print_endline (Obs.Metrics.render ());
      if lint || analysis then print_diags reports)

let explain_cmd db_name opt lint analysis tree sql =
  with_query db_name sql (fun cat db block ->
      let config =
        apply_tree tree
          { (optimizer_config opt) with Core.Pipeline.lint; analysis }
      in
      print_endline (Core.Pipeline.explain_query ~config cat db block))

let tables_cmd db_name =
  let cat, db = load db_name in
  List.iter
    (fun name ->
       let t = Storage.Catalog.table cat name in
       Fmt.pr "%a@." Storage.Table.pp t;
       List.iter
         (fun idx -> Fmt.pr "  %a@." Storage.Btree.pp idx)
         (Storage.Catalog.indexes cat name);
       match Stats.Table_stats.find db name with
       | Some ts -> Fmt.pr "  @[<v>%a@]@." Stats.Table_stats.pp ts
       | None -> ())
    (Storage.Catalog.table_names cat)

(* ------------------------------------------------------------------ *)

open Cmdliner

let db_arg =
  Arg.(value & opt string "emp"
       & info [ "d"; "database" ] ~docv:"DB"
           ~doc:"Demo database to query: emp or star.")

let opt_arg =
  Arg.(value & opt string "systemr"
       & info [ "o"; "optimizer" ] ~docv:"OPT"
           ~doc:"Optimizer pipeline: systemr, bushy or naive (no rewrites).")

let limit_arg =
  Arg.(value & opt int 20
       & info [ "n"; "limit" ] ~docv:"N" ~doc:"Rows to print.")

let engine_arg =
  Arg.(value & opt string "batch"
       & info [ "e"; "engine" ] ~docv:"ENGINE"
           ~doc:"Plan execution engine: batch (vectorized) or interpreted \
                 (tuple-at-a-time oracle). Both produce identical rows and \
                 cost accounting.")

let dop_arg =
  Arg.(value & opt int 1
       & info [ "dop" ] ~docv:"N"
           ~doc:"Degree of parallelism for plan execution (batch engine \
                 only). N > 1 runs plans on the morsel-driven parallel \
                 engine, with per-operator parallelism taken from the \
                 two-phase segment schedule; rows and cost accounting are \
                 bit-identical to --dop 1.")

let estimator_arg =
  Arg.(value & opt string "histogram"
       & info [ "estimator" ] ~docv:"EST"
           ~doc:"Cardinality estimator: histogram (stock derivation), \
                 feedback (cache actual cardinalities from execution and \
                 reuse them on re-optimization) or sketch (Fast-AGMS \
                 sketches built during batch/morsel scans drive join \
                 selectivities). feedback and sketch pay off with \
                 --repeat > 1: the state persists across repeats.")

let repeat_arg =
  Arg.(value & opt int 1
       & info [ "repeat" ] ~docv:"N"
           ~doc:"Run the query N times (printing the last run). With \
                 --estimator feedback or sketch, later runs re-optimize \
                 using what earlier executions recorded.")

let lint_arg =
  Arg.(value & flag
       & info [ "lint" ]
           ~doc:"Statically verify every rewrite step and physical plan; \
                 print diagnostics (exit 2 on lint errors under run).")

let analysis_arg =
  Arg.(value & flag
       & info [ "analysis" ]
           ~doc:"Abstract-interpretation pass: fold provably-empty \
                 subtrees, derive transitive range predicates, and lint \
                 cardinality estimates against the provable envelope \
                 (est-above-envelope, est-below-envelope, \
                 est-zero-nonempty); prints diagnostics under run.")

let tree_arg =
  Arg.(value
       & vflag `Default
           [ (`Bushy,
              info [ "bushy" ]
                ~doc:"Enumerate bushy join trees (overrides the optimizer \
                      preset's shape).");
             (`Left_deep,
              info [ "left-deep" ]
                ~doc:"Enumerate left-deep join trees only (overrides the \
                      optimizer preset's shape).") ])

let opt_stats_arg =
  Arg.(value & flag
       & info [ "opt-stats" ]
           ~doc:"Print enumeration counters (DP subsets, splits considered, \
                 plans costed, plans pruned) and end-to-end wall time.")

let analyze_arg =
  Arg.(value & flag
       & info [ "analyze" ]
           ~doc:"EXPLAIN ANALYZE: execute with per-operator instrumentation \
                 and print estimated vs. actual rows, q-error, rescans, \
                 counter deltas and wall time for every operator.")

let trace_json_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-json" ] ~docv:"FILE"
           ~doc:"Write the structured optimizer trace (rewrites fired and \
                 rejected, per-level enumeration counters, prunes, \
                 interesting-order retentions, memo statistics) to FILE as \
                 line-delimited JSON.")

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Print the process-wide metrics registry (queries run, \
                 blocks planned, max q-error, ...) after the query.")

let sql_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL")

let run_t =
  Cmd.v (Cmd.info "run" ~doc:"Optimize and execute a SQL query")
    Term.(
      const run_cmd $ db_arg $ opt_arg $ engine_arg $ dop_arg
      $ estimator_arg $ repeat_arg $ lint_arg $ analysis_arg
      $ limit_arg $ tree_arg $ opt_stats_arg $ analyze_arg $ trace_json_arg
      $ metrics_arg $ sql_arg)

let explain_t =
  Cmd.v (Cmd.info "explain" ~doc:"Show rewrites and the chosen physical plan")
    Term.(
      const explain_cmd $ db_arg $ opt_arg $ lint_arg $ analysis_arg
      $ tree_arg $ sql_arg)

let tables_t =
  Cmd.v (Cmd.info "tables" ~doc:"List tables, indexes and statistics")
    Term.(const tables_cmd $ db_arg)

let main =
  Cmd.group
    (Cmd.info "qopt" ~version:"1.0"
       ~doc:"Cost-based SQL query optimizer (PODS'98 survey reproduction)")
    [ run_t; explain_t; tables_t ]

let () = exit (Cmd.eval main)
