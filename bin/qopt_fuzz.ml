(* Differential query fuzzer CLI.

   `qopt_fuzz run` sweeps a seed range: for each seed it generates a
   random database + query, executes it under the full config grid and
   cross-checks results, cost counters, lint findings and the SQL
   printer/parser round-trip; divergences are shrunk and written as
   replayable repro files.  `qopt_fuzz replay` re-checks saved repros
   (the checked-in corpus under fuzz/corpus/). *)

open Cmdliner
module F = Fuzz

let default_seed = 1

let grid_of = function
  | "fast" -> F.Oracle.fast_grid
  | _ -> F.Oracle.full_grid

let run_cmd seed count grid_name out inject_fault verbose =
  if inject_fault then Exec.Batch.fault_null_key_as_zero := true;
  let grid = grid_of grid_name in
  let checked = ref 0 in
  let on_case ~seed:s f =
    incr checked;
    (match f with
     | Some f ->
       Fmt.epr "seed %d: FAIL %a@." s F.Oracle.pp_failure f
     | None -> if verbose then Fmt.epr "seed %d: ok@." s);
    if (not verbose) && !checked mod 100 = 0 then
      Fmt.epr "[%d/%d]@." !checked count
  in
  let failures =
    F.Driver.run_range ~grid ~max_failures:10 ~on_case ~seed count
  in
  let paths = F.Driver.save_failures ~dir:out failures in
  if failures = [] then begin
    Fmt.pr "fuzz: %d seeds from %d, grid=%s (%d configs): no divergence@."
      count seed grid_name (List.length grid);
    0
  end
  else begin
    Fmt.pr "fuzz: %d failure(s) in %d checked seed(s); shrunken repros:@."
      (List.length failures) !checked;
    List.iter (fun p -> Fmt.pr "  %s@." p) paths;
    List.iter
      (fun (fc : F.Driver.failure_case) ->
         Fmt.pr "seed %d (%d relations after shrinking): %a@.  %s@." fc.seed
           (F.Gen.relation_count fc.query)
           F.Oracle.pp_failure fc.failure fc.repro.F.Repro.sql)
      failures;
    1
  end

let replay_cmd grid_name paths inject_fault =
  if inject_fault then Exec.Batch.fault_null_key_as_zero := true;
  let grid = grid_of grid_name in
  let files =
    List.concat_map
      (fun p ->
         if Sys.is_directory p then
           Sys.readdir p |> Array.to_list
           |> List.filter (fun f -> Filename.check_suffix f ".repro")
           |> List.sort compare
           |> List.map (Filename.concat p)
         else [ p ])
      paths
  in
  let bad = ref 0 in
  List.iter
    (fun f ->
       let r = F.Repro.load f in
       match F.Repro.replay ~grid r with
       | None -> Fmt.pr "%s: ok@." f
       | Some fl ->
         incr bad;
         Fmt.pr "%s: FAIL %a@." f F.Oracle.pp_failure fl)
    files;
  if !bad = 0 then 0 else 1

let seed_arg =
  Arg.(value & opt int default_seed
       & info [ "seed" ] ~docv:"N"
           ~doc:"First seed of the sweep (deterministic; never wall-clock).")

let count_arg =
  Arg.(value & opt int 1000
       & info [ "count" ] ~docv:"N" ~doc:"Number of seeds to check.")

let grid_arg =
  Arg.(value & opt (enum [ ("full", "full"); ("fast", "fast") ]) "full"
       & info [ "grid" ] ~docv:"GRID"
           ~doc:"Config grid: $(b,full) (all engines/shapes/enumerators) or \
                 $(b,fast) (reference + default pair).")

let out_arg =
  Arg.(value & opt string "fuzz/found"
       & info [ "out" ] ~docv:"DIR" ~doc:"Directory for shrunken repro files.")

let fault_arg =
  Arg.(value & flag
       & info [ "inject-null-key-fault" ]
           ~doc:"Enable the test-only engine fault (NULL join keys treated \
                 as 0 in the batch hash join) to demonstrate detection and \
                 shrinking.")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Log every seed.")

let paths_arg =
  Arg.(non_empty & pos_all string []
       & info [] ~docv:"PATH" ~doc:"Repro files or directories of .repro files.")

let run_c =
  Cmd.v
    (Cmd.info "run"
       ~doc:"Fuzz a seed range across the config grid, shrinking failures")
    Term.(
      const run_cmd $ seed_arg $ count_arg $ grid_arg $ out_arg $ fault_arg
      $ verbose_arg)

let replay_c =
  Cmd.v
    (Cmd.info "replay" ~doc:"Replay saved repro files through the oracles")
    Term.(const replay_cmd $ grid_arg $ paths_arg $ fault_arg)

let main =
  Cmd.group
    (Cmd.info "qopt_fuzz" ~version:"1.0"
       ~doc:"Differential fuzzer for the query optimizer and engines")
    [ run_c; replay_c ]

let () = exit (Cmd.eval' main)
